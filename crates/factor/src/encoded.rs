//! Dictionary-encoded columnar backend for the factorised operators.
//!
//! The `Value`-keyed representation ([`Factorization`] +
//! [`DecomposedAggregates`](crate::aggregates::DecomposedAggregates)) pays an
//! `Arc<str>` clone plus an `O(log n)` string-comparison `BTreeMap` lookup for
//! every path/value touch on the operator hot paths. This module replaces
//! those with dense integer codes:
//!
//! * [`EncodedFactor`] — one hierarchy stored *columnar*: per level a
//!   [`ValueDict`] (sorted domain → dense `u32` codes) and the level's code
//!   column in path order;
//! * [`EncodedFactorization`] — the ordered hierarchy factors plus column
//!   offsets, `Arc`-shared so drill-down caches reuse them without copies;
//! * [`EncodedHierarchyAggregates`] / [`EncodedAggregates`] — the
//!   `TOTAL`/`COUNT`/`COF` batch of Section 4.2.1 as code-indexed `Vec<f64>`
//!   descendant tables and run/COF tables of `(u32, f64)` pairs;
//! * [`EncodedFeatureMap`] — per column a flat `Vec<f64>` indexed by code;
//! * [`gram`], [`left_mult`], [`right_mult`], [`transpose_vec_mult`] — the
//!   factorised operators of Algorithms 2–4 running on codes end-to-end.
//!
//! Codes are assigned in sorted `Value` order, and every loop below iterates
//! in exactly the same order (and performs the same floating-point operation
//! sequence) as its `Value`-keyed counterpart, so results are **bit-identical**
//! to the legacy path — the equivalence property tests assert `==`, not
//! tolerance. Decoding back to [`Value`] happens only at the explanation/API
//! boundary via the per-level dictionaries.

use crate::factorization::{AttrPosition, Factorization, HierarchyFactor};
use crate::feature::FeatureMap;
use crate::parallel::Parallelism;
use crate::payload;
use reptile_linalg::{Matrix, PrefixSum};
use reptile_obs::{add_counter, Counter, Stage, StageTimer};
use reptile_relational::exec::{scatter_fold_in_order, DOMAIN_FACTOR, OP_AGG_RANGE};
use reptile_relational::{AttrId, Exec, Remote, RemoteError, Value, ValueDict};
use std::cmp::Ordering;
use std::sync::{Arc, OnceLock};

/// Which factor execution path an operator/design runs on. The legacy
/// `Value`-keyed path stays available so the encoded backend can be
/// benchmarked and equivalence-tested against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FactorBackend {
    /// `Value`-keyed `BTreeMap` aggregates and operators (the original path).
    Legacy,
    /// Dictionary-encoded columnar codes (the default).
    #[default]
    Encoded,
}

/// One level of an encoded hierarchy: its domain dictionary and the dense
/// code column in (value-sorted) path order.
///
/// The code column is `Arc`-shared so that [`EncodedFactor::apply_delta`]
/// can hand untouched columns to the next snapshot without copying them, and
/// cloning a factor (e.g. into a cache entry) costs pointer bumps per level.
#[derive(Debug, Clone)]
pub struct EncodedLevel {
    /// Domain of the level; sorted-rank codes at construction, with appended
    /// codes for values first seen by a later delta (see
    /// [`ValueDict::extend_with`]).
    pub dict: ValueDict,
    /// The level's value codes, one per path, in path order.
    pub codes: Arc<Vec<u32>>,
}

/// A dictionary-encoded hierarchy factor (columnar layout).
#[derive(Debug)]
pub struct EncodedFactor {
    /// Name of the hierarchy (for diagnostics).
    pub name: String,
    /// Attribute ids of the levels included, least specific first.
    pub attrs: Vec<AttrId>,
    /// Per-level dictionary + code column.
    pub levels: Vec<EncodedLevel>,
    leaf_count: usize,
    /// Per level, the start index of every maximal code run plus a
    /// `leaf_count` sentinel — precomputed at construction so that the
    /// per-shard [`EncodedFactor::level_runs_range`] scans are a binary
    /// search plus a walk over the runs actually present in the range,
    /// instead of an `O(len)` re-detection per call per level per shard.
    run_starts: Vec<Arc<Vec<usize>>>,
    /// Lazily computed content fingerprint (FNV-1a over the wire encoding)
    /// — the `(DOMAIN_FACTOR, key)` remote state key. Content-addressing
    /// makes stale worker state impossible by construction: a post-ingest
    /// snapshot is a *different* factor with a different fingerprint, so it
    /// ships under a new key instead of silently aliasing the old one.
    fingerprint: OnceLock<u64>,
}

impl Clone for EncodedFactor {
    fn clone(&self) -> Self {
        EncodedFactor {
            name: self.name.clone(),
            attrs: self.attrs.clone(),
            levels: self.levels.clone(),
            leaf_count: self.leaf_count,
            run_starts: self.run_starts.clone(),
            // `OnceLock` is not `Clone`; carry the computed value over so a
            // cached clone never re-hashes.
            fingerprint: match self.fingerprint.get() {
                Some(&fp) => {
                    let lock = OnceLock::new();
                    let _ = lock.set(fp);
                    lock
                }
                None => OnceLock::new(),
            },
        }
    }
}

/// The sorted start indices of `codes`' maximal runs, with a final
/// `codes.len()` sentinel (so run `r` spans `starts[r]..starts[r + 1]`).
fn run_start_table(codes: &[u32]) -> Vec<usize> {
    let mut starts = Vec::new();
    let mut prev = None;
    for (i, &code) in codes.iter().enumerate() {
        if prev != Some(code) {
            starts.push(i);
            prev = Some(code);
        }
    }
    starts.push(codes.len());
    starts
}

impl EncodedFactor {
    /// Encode a `Value`-keyed hierarchy factor. This is the one place that
    /// still compares `Value`s (building the per-level dictionaries); all
    /// downstream work runs on the codes.
    ///
    /// The per-path dictionary lookups (the `O(n log |domain|)` bulk of the
    /// encode) fan out over `exec`'s *local* thread budget — encoding reads
    /// the coordinator-resident path table, so it never goes remote. Every
    /// shard reads the *same* per-level [`ValueDict`] — built once, up
    /// front, from one linear representatives pass — so codes are identical
    /// across shards and the concatenated columns equal the serial encode
    /// bit-for-bit.
    pub fn encode(factor: &HierarchyFactor, exec: &Exec) -> Self {
        let par = exec.parallelism();
        let _span = StageTimer::start(Stage::Encode);
        let depth = factor.depth();
        let leaf_count = factor.leaf_count();
        let mut levels = Vec::with_capacity(depth);
        for level in 0..depth {
            // Collect one representative per consecutive run (paths are
            // sorted, so runs bound the distinct count), then sort+dedup the
            // representatives into the dictionary.
            let mut reps: Vec<Value> = Vec::new();
            for path in &factor.paths {
                if reps.last() != Some(&path[level]) {
                    reps.push(path[level].clone());
                }
            }
            let dict = ValueDict::from_values(reps);
            let encode_range = |start: usize, len: usize| -> Vec<u32> {
                factor.paths[start..start + len]
                    .iter()
                    .map(|p| dict.code_of(&p[level]).expect("value drawn from domain"))
                    .collect()
            };
            let codes: Vec<u32> = if par.is_serial() {
                encode_range(0, factor.paths.len())
            } else {
                par.map_ranges(factor.paths.len(), encode_range).concat()
            };
            levels.push(EncodedLevel {
                dict,
                codes: Arc::new(codes),
            });
        }
        let run_starts = levels
            .iter()
            .map(|l| Arc::new(run_start_table(&l.codes)))
            .collect();
        EncodedFactor {
            name: factor.name.clone(),
            attrs: factor.attrs.clone(),
            levels,
            leaf_count,
            run_starts,
            fingerprint: OnceLock::new(),
        }
    }

    /// Reassemble a factor from its levels — the wire decode path
    /// ([`payload::decode_factor`]). The leaf count is the (shared) code
    /// column length and the run tables are rebuilt; dictionaries arrive in
    /// the encoder's code order, so the result is structurally identical to
    /// the factor that was encoded.
    pub fn from_levels(name: String, attrs: Vec<AttrId>, levels: Vec<EncodedLevel>) -> Self {
        let leaf_count = levels.first().map_or(0, |l| l.codes.len());
        debug_assert!(levels.iter().all(|l| l.codes.len() == leaf_count));
        let run_starts = levels
            .iter()
            .map(|l| Arc::new(run_start_table(&l.codes)))
            .collect();
        EncodedFactor {
            name,
            attrs,
            levels,
            leaf_count,
            run_starts,
            fingerprint: OnceLock::new(),
        }
    }

    /// The factor's content fingerprint: FNV-1a over its wire encoding,
    /// computed once and cached. Coordinator and worker compute the same
    /// value from the same content, so it doubles as an end-to-end shipping
    /// integrity check.
    pub fn fingerprint(&self) -> u64 {
        *self
            .fingerprint
            .get_or_init(|| payload::fnv1a(&payload::encode_factor(self)))
    }

    /// Number of levels present.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Number of distinct leaf paths.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// Number of distinct values at `level`.
    pub fn cardinality(&self, level: usize) -> usize {
        self.levels[level].dict.len()
    }

    /// The code of path `path_idx` at `level`.
    #[inline]
    pub fn code(&self, level: usize, path_idx: usize) -> u32 {
        self.levels[level].codes[path_idx]
    }

    /// The values of `level` in *path order* together with their descendant
    /// leaf counts — the code-space mirror of
    /// [`HierarchyFactor::level_runs`].
    pub fn level_runs(&self, level: usize) -> Vec<(u32, usize)> {
        self.level_runs_range(level, 0, self.leaf_count)
    }

    /// [`EncodedFactor::level_runs`] restricted to the contiguous path range
    /// `[start, start + len)` — the per-shard scan behind
    /// [`EncodedHierarchyAggregates::compute_range`]. A run split by a shard
    /// boundary shows up as one partial run per side; the shard merge joins
    /// them back (runs are maximal *within* a shard, so only boundary runs
    /// can share a code with their neighbour).
    ///
    /// Served from the precomputed per-level run table: one binary search
    /// for the run covering `start`, then a walk clipping each run to the
    /// range — `O(log R + r)` for `r` runs in the range, independent of
    /// `len`.
    pub fn level_runs_range(&self, level: usize, start: usize, len: usize) -> Vec<(u32, usize)> {
        let codes = &self.levels[level].codes;
        let end = start + len;
        debug_assert!(end <= codes.len());
        if len == 0 {
            return Vec::new();
        }
        let starts = &self.run_starts[level];
        // Index of the run containing `start`: the last table entry <= start
        // (the sentinel guarantees a successor entry exists).
        let mut run = starts.partition_point(|&s| s <= start) - 1;
        let mut runs = Vec::new();
        let mut lo = start;
        while lo < end {
            let hi = starts[run + 1].min(end);
            runs.push((codes[lo], hi - lo));
            lo = hi;
            run += 1;
        }
        runs
    }

    /// Decode path `path_idx` back to its values, root level first.
    pub fn decode_path(&self, path_idx: usize) -> Vec<Value> {
        self.levels
            .iter()
            .map(|l| l.dict.value(l.codes[path_idx]).clone())
            .collect()
    }

    /// Compare path `path_idx` against a value path, level by level (the
    /// lexicographic order the path table is kept sorted in).
    pub fn cmp_path(&self, path_idx: usize, path: &[Value]) -> Ordering {
        for (level, value) in path.iter().enumerate() {
            match self.levels[level]
                .dict
                .value(self.levels[level].codes[path_idx])
                .cmp(value)
            {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// Apply a path delta, producing the next snapshot of this factor.
    ///
    /// Dictionaries are extended in place (stable codes for existing values,
    /// appended codes for unseen ones — see [`ValueDict::extend_with`]), and
    /// the code columns are spliced by a single merge pass that keeps the
    /// path table in value-sorted order. Compared to a cold re-encode this
    /// skips the per-level dictionary rebuild and the `O(n log |domain|)`
    /// code lookups; only the delta's own paths touch a dictionary.
    ///
    /// `delta.removed` paths must be present and `delta.added` paths absent
    /// (both sorted and distinct) — [`PathDelta::between`] produces exactly
    /// this shape. Violations are caught by debug assertions.
    pub fn apply_delta(&self, delta: &PathDelta) -> EncodedFactor {
        let depth = self.depth();
        debug_assert!(delta.added.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(delta.removed.windows(2).all(|w| w[0] < w[1]));
        // 1. Extend the dictionaries with any unseen values.
        let mut dicts: Vec<ValueDict> = self.levels.iter().map(|l| l.dict.clone()).collect();
        for path in &delta.added {
            debug_assert_eq!(path.len(), depth);
            for (level, dict) in dicts.iter_mut().enumerate() {
                dict.code_or_insert(&path[level]);
            }
        }
        // 2. Merge-splice the code columns in one pass over the old table.
        let target = self.leaf_count + delta.added.len() - delta.removed.len();
        let mut columns: Vec<Vec<u32>> = (0..depth).map(|_| Vec::with_capacity(target)).collect();
        let push_value_path = |columns: &mut Vec<Vec<u32>>, path: &[Value]| {
            for (level, col) in columns.iter_mut().enumerate() {
                col.push(dicts[level].code_of(&path[level]).expect("extended above"));
            }
        };
        let mut add = delta.added.iter().peekable();
        let mut rem = delta.removed.iter().peekable();
        for idx in 0..self.leaf_count {
            while let Some(a) = add.peek() {
                match self.cmp_path(idx, a) {
                    Ordering::Greater => {
                        push_value_path(&mut columns, a);
                        add.next();
                    }
                    cmp => {
                        debug_assert_ne!(cmp, Ordering::Equal, "added path already present");
                        break;
                    }
                }
            }
            if let Some(r) = rem.peek() {
                if self.cmp_path(idx, r) == Ordering::Equal {
                    rem.next();
                    continue;
                }
            }
            for (level, col) in columns.iter_mut().enumerate() {
                col.push(self.levels[level].codes[idx]);
            }
        }
        for a in add {
            push_value_path(&mut columns, a);
        }
        debug_assert!(rem.peek().is_none(), "removed path not present in factor");
        let leaf_count = columns.first().map_or(target, Vec::len);
        let levels: Vec<EncodedLevel> = dicts
            .into_iter()
            .zip(columns)
            .map(|(dict, codes)| EncodedLevel {
                dict,
                codes: Arc::new(codes),
            })
            .collect();
        let run_starts = levels
            .iter()
            .map(|l| Arc::new(run_start_table(&l.codes)))
            .collect();
        EncodedFactor {
            name: self.name.clone(),
            attrs: self.attrs.clone(),
            levels,
            leaf_count,
            run_starts,
            fingerprint: OnceLock::new(),
        }
    }
}

/// The distinct-path changes of one hierarchy between two snapshots: paths
/// that appeared and paths that vanished, both in sorted order. This is the
/// unit [`EncodedFactor::apply_delta`] and
/// [`EncodedAggregates::apply_delta`] maintain encoded state from — note it
/// is a *path* delta, not a row delta: a row insert only shows up here if it
/// created a previously-absent path (and a delete only if it removed the
/// last row of one).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PathDelta {
    /// Paths present after but not before, sorted.
    pub added: Vec<Vec<Value>>,
    /// Paths present before but not after, sorted.
    pub removed: Vec<Vec<Value>>,
}

impl PathDelta {
    /// Diff an encoded factor against the sorted distinct path table of the
    /// next snapshot (e.g. `HierarchyFactor::paths`, which
    /// [`HierarchyFactor::from_paths`] keeps sorted). One merge pass; the
    /// old side is decoded lazily through the level dictionaries.
    pub fn between(factor: &EncodedFactor, new_paths: &[Vec<Value>]) -> PathDelta {
        let mut delta = PathDelta::default();
        let (mut i, mut j) = (0usize, 0usize);
        while i < factor.leaf_count() && j < new_paths.len() {
            match factor.cmp_path(i, &new_paths[j]) {
                Ordering::Less => {
                    delta.removed.push(factor.decode_path(i));
                    i += 1;
                }
                Ordering::Greater => {
                    delta.added.push(new_paths[j].clone());
                    j += 1;
                }
                Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        while i < factor.leaf_count() {
            delta.removed.push(factor.decode_path(i));
            i += 1;
        }
        delta.added.extend(new_paths[j..].iter().cloned());
        delta
    }

    /// Number of path changes.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Per-hierarchy path deltas for a whole factorisation; `None` marks a
/// hierarchy whose distinct path set did not change (its factor and
/// aggregates are re-shared by `Arc` instead of recomputed).
#[derive(Debug, Clone, Default)]
pub struct FactorizationDelta {
    /// One optional delta per hierarchy, in factorisation order.
    pub per_hierarchy: Vec<Option<PathDelta>>,
}

impl FactorizationDelta {
    /// A delta touching none of `hierarchies` hierarchies.
    pub fn none(hierarchies: usize) -> Self {
        FactorizationDelta {
            per_hierarchy: vec![None; hierarchies],
        }
    }

    /// Set hierarchy `h`'s path delta (builder style).
    pub fn with(mut self, h: usize, delta: PathDelta) -> Self {
        self.per_hierarchy[h] = Some(delta);
        self
    }

    /// Whether no hierarchy has a (non-empty) delta.
    pub fn is_empty(&self) -> bool {
        self.per_hierarchy
            .iter()
            .all(|d| d.as_ref().is_none_or(PathDelta::is_empty))
    }
}

/// The dictionary-encoded factorised matrix: ordered encoded hierarchy
/// factors plus column offsets. Factors are `Arc`-shared so that the
/// drill-down session cache can hand them out without copying code columns.
#[derive(Debug, Clone)]
pub struct EncodedFactorization {
    factors: Vec<Arc<EncodedFactor>>,
    offsets: Vec<usize>,
    columns: usize,
}

impl EncodedFactorization {
    /// Assemble from encoded factors (drill-down hierarchy last).
    pub fn new(factors: Vec<Arc<EncodedFactor>>) -> Self {
        let mut offsets = Vec::with_capacity(factors.len());
        let mut columns = 0usize;
        for f in &factors {
            offsets.push(columns);
            columns += f.depth();
        }
        EncodedFactorization {
            factors,
            offsets,
            columns,
        }
    }

    /// Encode every hierarchy of a `Value`-keyed factorisation (serial
    /// convenience; per-hierarchy callers on a hot path use
    /// [`EncodedFactor::encode`] with their own [`Exec`]).
    pub fn encode(fact: &Factorization) -> Self {
        EncodedFactorization::new(
            fact.hierarchies()
                .iter()
                .map(|h| Arc::new(EncodedFactor::encode(h, &Exec::Serial)))
                .collect(),
        )
    }

    /// The encoded hierarchy factors in order.
    pub fn factors(&self) -> &[Arc<EncodedFactor>] {
        &self.factors
    }

    /// Number of columns (attributes) of the conceptual matrix.
    pub fn n_cols(&self) -> usize {
        self.columns
    }

    /// Number of rows of the conceptual matrix (product of leaf counts).
    pub fn n_rows(&self) -> usize {
        self.factors.iter().map(|f| f.leaf_count()).product()
    }

    /// Map a global column index to its `(hierarchy, level)` position.
    pub fn position(&self, column: usize) -> AttrPosition {
        for (h, offset) in self.offsets.iter().enumerate() {
            let depth = self.factors[h].depth();
            if column < offset + depth {
                return AttrPosition {
                    hierarchy: h,
                    level: column - offset,
                    column,
                };
            }
        }
        panic!(
            "column {column} out of range for encoded factorization with {} columns",
            self.columns
        );
    }

    /// Global column index of `(hierarchy, level)`.
    pub fn column_of(&self, hierarchy: usize, level: usize) -> usize {
        self.offsets[hierarchy] + level
    }

    /// The dictionary of `column`'s domain — the decode boundary.
    pub fn dict(&self, column: usize) -> &ValueDict {
        let pos = self.position(column);
        &self.factors[pos.hierarchy].levels[pos.level].dict
    }
}

/// Aggregates local to one encoded hierarchy: the code-space mirror of
/// [`HierarchyAggregates`](crate::aggregates::HierarchyAggregates), with
/// dense code-indexed descendant tables instead of `BTreeMap<Value, f64>`.
///
/// Every table is additive across contiguous path shards (all counts are
/// integer-valued `f64`s), which is what makes
/// [`EncodedHierarchyAggregates::merge`] of per-shard
/// [`EncodedHierarchyAggregates::compute_range`] partials *exactly* equal
/// to the unsharded [`EncodedHierarchyAggregates::compute`] — `==`, not
/// tolerance (`PartialEq` is derived for precisely that assertion).
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedHierarchyAggregates {
    /// Number of distinct leaf paths.
    pub leaf_count: f64,
    /// Per level: `desc[level][code]` = number of descendant leaf paths.
    pub desc: Vec<Vec<f64>>,
    /// Per level: `(code, descendant count)` in path (block) order.
    pub runs: Vec<Vec<(u32, f64)>>,
    /// Same-hierarchy `COF` tables, indexed by `l1 * depth + l2` for level
    /// pairs `l1 < l2`: `(parent code, child code, descendant leaves)`.
    pub cofs: Vec<Vec<(u32, u32, f64)>>,
}

impl EncodedHierarchyAggregates {
    /// Compute the per-hierarchy aggregates with the same bottom-up work
    /// sharing as the `Value`-keyed path — but every map update is a flat
    /// `Vec` index on a `u32` code.
    ///
    /// `exec` says *where* the scan runs: inline ([`Exec::Serial`]), over
    /// the in-process shard pool at the adaptive width ([`Exec::Pool`]),
    /// over exactly `n` contiguous leaf shards ([`Exec::Shards`]), or
    /// scattered across worker processes ([`Exec::Remote`]) with the
    /// partials merged back on the coordinator. Every context is
    /// bit-identical to serial: all merged quantities are integer-valued
    /// `f64` sums (exact in any grouping) and boundary-split runs re-join
    /// exactly ([`EncodedHierarchyAggregates::merge`]).
    ///
    /// This signature is infallible, so a remote failure (worker gone,
    /// protocol error) falls back to the coordinator-local pool after
    /// bumping the `remote_fallbacks` counter — the result is still exact,
    /// only the placement changed. Distributed deployments gate on
    /// `remote_fallbacks == 0` to catch silent degradation.
    pub fn compute(factor: &EncodedFactor, exec: &Exec) -> Self {
        match exec {
            Exec::Serial => Self::compute_range(factor, 0, factor.leaf_count()),
            Exec::Pool(par) => Self::compute_pool(factor, par),
            Exec::Shards(shards) => {
                // Exactly `shards` contiguous leaf shards, no size threshold
                // — counts past the leaf count are valid, their partials are
                // empty and merge as identities. The exactness property
                // tests drive this arm (and it is the in-process mirror of
                // the per-worker scatter below).
                let ranges = Parallelism::shard_ranges(factor.leaf_count(), (*shards).max(1));
                if ranges.len() <= 1 {
                    return Self::compute_range(factor, 0, factor.leaf_count());
                }
                let par = Parallelism::new(*shards);
                let parts = par.run_shards(&ranges, |start, len| {
                    Self::compute_range(factor, start, len)
                });
                Self::merge(&parts)
            }
            Exec::Remote(remote) => match Self::compute_remote(factor, remote) {
                Ok(aggs) => aggs,
                Err(_) => {
                    add_counter(Counter::RemoteFallbacks, 1);
                    Self::compute_pool(factor, &remote.local())
                }
            },
        }
    }

    /// The [`Exec::Pool`] arm: shard over `par`'s adaptive ranges and merge.
    fn compute_pool(factor: &EncodedFactor, par: &Parallelism) -> Self {
        let ranges = par.ranges_for(factor.leaf_count());
        if ranges.len() <= 1 {
            return Self::compute_range(factor, 0, factor.leaf_count());
        }
        let parts = par.run_shards(&ranges, |start, len| {
            Self::compute_range(factor, start, len)
        });
        Self::merge(&parts)
    }

    /// The [`Exec::Remote`] arm: ship the factor (content-addressed, so the
    /// transport skips workers that already hold it), scatter one
    /// contiguous leaf range per worker, and merge the decoded partials in
    /// worker order — structurally identical to `Exec::Shards(workers)`,
    /// hence bit-identical to serial.
    ///
    /// The *full* factor ships to every worker (dictionaries in code order
    /// plus whole code columns) rather than a sliced partition: factors are
    /// small relative to relations (distinct paths, not rows), one blob
    /// serves every later range request, and shared full dictionaries are
    /// what make the code-keyed partials merge with no translation.
    pub fn compute_remote(factor: &EncodedFactor, remote: &Remote) -> Result<Self, RemoteError> {
        let transport = remote.transport();
        let fingerprint = factor.fingerprint();
        transport.ensure_state(DOMAIN_FACTOR, fingerprint, &|| {
            payload::encode_factor(factor)
        })?;
        let ranges = Parallelism::shard_ranges(factor.leaf_count(), transport.workers().max(1));
        let requests: Vec<Option<Vec<u8>>> = ranges
            .iter()
            .map(|&(start, len)| {
                (len > 0).then(|| payload::encode_agg_request(fingerprint, start, len))
            })
            .collect();
        // Streamed scatter: each partial decodes, shape-checks and folds the
        // moment it lands (in worker order — out-of-order arrivals buffer in
        // `scatter_fold_in_order`), so merge work overlaps the network wait.
        // The incremental pairwise merge is the same left fold `merge` runs
        // over a full slice — integer-`f64` sums and boundary run joins are
        // associative — so the result is bit-identical to the gathered path.
        // The overlap span covers the whole scatter+fold window.
        let _span = StageTimer::start(Stage::RemoteMerge);
        let mut acc: Option<Self> = None;
        scatter_fold_in_order(
            transport.as_ref(),
            OP_AGG_RANGE,
            requests,
            &mut |_, reply| {
                let part = payload::decode_aggregates(&reply)
                    .map_err(|e| RemoteError::Protocol(e.to_string()))?;
                // Shape-check before merging so a corrupt or mismatched reply
                // becomes a typed error instead of a panic inside `merge`.
                payload::check_partial_shape(factor, &part)
                    .map_err(|e| RemoteError::Protocol(e.to_string()))?;
                acc = Some(match acc.take() {
                    Some(prev) => Self::merge(&[prev, part]),
                    None => part,
                });
                Ok(())
            },
        )?;
        match acc {
            Some(merged) => Ok(merged),
            // Every worker was range-pruned (empty factor).
            None => Ok(Self::compute_range(factor, 0, 0)),
        }
    }

    /// The partial aggregates of the contiguous path shard
    /// `[start, start + len)`: descendant tables still sized to the *full*
    /// per-level dictionaries (shards share the factor's dictionaries, so
    /// codes index identically across shards) but counting only the shard's
    /// leaves; run and `COF` tables scanned over the shard's code-column
    /// slice. `compute(f)` is exactly `compute_range(f, 0, f.leaf_count())`,
    /// and any shard partition of the range merges back to it via
    /// [`EncodedHierarchyAggregates::merge`].
    pub fn compute_range(factor: &EncodedFactor, start: usize, len: usize) -> Self {
        // Per-shard scan span (serial `compute` is the one-shard case).
        let _span = StageTimer::start(Stage::Scan);
        let depth = factor.depth();
        let end = start + len;
        debug_assert!(end <= factor.leaf_count());
        let leaf_count = len as f64;
        let mut desc: Vec<Vec<f64>> = (0..depth)
            .map(|level| vec![0.0; factor.cardinality(level)])
            .collect();
        let mut runs: Vec<Vec<(u32, f64)>> = vec![Vec::new(); depth];

        if depth > 0 {
            // Leaf level: every path contributes one leaf.
            let leaf = depth - 1;
            for &code in &factor.levels[leaf].codes[start..end] {
                desc[leaf][code as usize] += 1.0;
            }
            runs[leaf] = factor
                .level_runs_range(leaf, start, len)
                .into_iter()
                .map(|(c, n)| (c, n as f64))
                .collect();
            // Shallower levels reuse the level below (work sharing): a value's
            // descendant count is the sum of its children's descendant counts.
            // The child run table was materialised by the previous iteration,
            // so no level's code column is scanned twice.
            for level in (0..leaf).rev() {
                let mut path_idx = start;
                for &(_, child_leaves) in &runs[level + 1] {
                    let parent = factor.code(level, path_idx) as usize;
                    desc[level][parent] += child_leaves;
                    path_idx += child_leaves as usize;
                }
                runs[level] = factor
                    .level_runs_range(level, start, len)
                    .into_iter()
                    .map(|(c, n)| (c, n as f64))
                    .collect();
            }
        }

        EncodedHierarchyAggregates {
            leaf_count,
            desc,
            runs,
            cofs: Self::cof_tables_range(factor, start, len),
        }
    }

    /// Exactly merge per-shard partial aggregates (in shard order) back into
    /// the unsharded state:
    ///
    /// * descendant tables are summed code-wise (shards share one dictionary,
    ///   so code `c` means the same value everywhere; integer `f64` sums are
    ///   exact in any grouping);
    /// * run and `COF` tables are concatenated, joining the boundary entries
    ///   when a run was split by a shard cut (runs are maximal *within* a
    ///   shard, so only the first entry of a shard can extend the last entry
    ///   of the previous one).
    ///
    /// # Panics
    /// Panics on an empty `parts` slice or mismatched table shapes (shards
    /// of different factors).
    pub fn merge(parts: &[EncodedHierarchyAggregates]) -> Self {
        let _span = StageTimer::start(Stage::Merge);
        let first = parts.first().expect("merge of at least one shard");
        let depth = first.desc.len();
        let leaf_count = parts.iter().map(|p| p.leaf_count).sum();
        let mut desc = first.desc.clone();
        for part in &parts[1..] {
            assert_eq!(part.desc.len(), depth, "shards must share one factor");
            for (level, table) in part.desc.iter().enumerate() {
                assert_eq!(
                    table.len(),
                    desc[level].len(),
                    "shards must share one dictionary"
                );
                for (acc, v) in desc[level].iter_mut().zip(table) {
                    *acc += v;
                }
            }
        }
        let runs = (0..depth)
            .map(|level| merge_boundary_runs(parts.iter().map(|p| &p.runs[level])))
            .collect();
        let cofs = (0..depth * depth)
            .map(|pair| merge_boundary_cofs(parts.iter().map(|p| &p.cofs[pair])))
            .collect();
        EncodedHierarchyAggregates {
            leaf_count,
            desc,
            runs,
            cofs,
        }
    }

    /// Same-hierarchy `COF` tables for every (shallower, deeper) level pair,
    /// from one linear scan of the code columns per pair.
    fn cof_tables(factor: &EncodedFactor) -> Vec<Vec<(u32, u32, f64)>> {
        Self::cof_tables_range(factor, 0, factor.leaf_count())
    }

    /// The `COF` scans restricted to the path shard `[start, start + len)`.
    fn cof_tables_range(
        factor: &EncodedFactor,
        start: usize,
        len: usize,
    ) -> Vec<Vec<(u32, u32, f64)>> {
        let depth = factor.depth();
        let end = start + len;
        let mut cofs = vec![Vec::new(); depth * depth];
        for l1 in 0..depth {
            let c1 = &factor.levels[l1].codes;
            for l2 in (l1 + 1)..depth {
                let c2 = &factor.levels[l2].codes;
                let table = &mut cofs[l1 * depth + l2];
                let mut i = start;
                while i < end {
                    let a = c1[i];
                    let b = c2[i];
                    let run_start = i;
                    while i < end && c1[i] == a && c2[i] == b {
                        i += 1;
                    }
                    table.push((a, b, (i - run_start) as f64));
                }
            }
        }
        cofs
    }

    /// The `COF` tables of a whole factor, sharded over `par` and
    /// boundary-merged — used by the delta-patch path, whose table rebuild is
    /// the dominant linear scan.
    fn cof_tables_with(factor: &EncodedFactor, par: &Parallelism) -> Vec<Vec<(u32, u32, f64)>> {
        let ranges = par.ranges_for(factor.leaf_count());
        if ranges.len() <= 1 {
            return Self::cof_tables(factor);
        }
        let chunks = par.run_shards(&ranges, |start, len| {
            Self::cof_tables_range(factor, start, len)
        });
        let depth = factor.depth();
        (0..depth * depth)
            .map(|pair| merge_boundary_cofs(chunks.iter().map(|c| &c[pair])))
            .collect()
    }

    /// Maintain the aggregates across a path delta instead of recomputing
    /// from scratch: `new_factor` must be `old_factor.apply_delta(delta)`.
    ///
    /// The descendant tables are *patched* — every added (removed) path
    /// increments (decrements) its value's count at each level, `O(|delta| ·
    /// depth)` dictionary probes, exact because the counts are integers. The
    /// run and `COF` tables are re-derived from the spliced code columns in
    /// linear `u32` scans (their entries are positional, so a single
    /// mid-table insertion shifts every later entry anyway). What the delta
    /// path never pays is the cold path's relation scan, path sort and
    /// dictionary rebuild.
    ///
    /// Codes of values whose last path vanished stay in the dictionaries
    /// with a descendant count of zero — they no longer appear in any run or
    /// `COF` entry, so every aggregate query is unaffected.
    ///
    /// The linear run/`COF` rebuild scans fan out over `exec`'s *local*
    /// thread budget (boundary-merged back, so the result is bit-identical
    /// to the serial patch); the patch never goes remote — it reads the
    /// coordinator's own delta, and the `O(|delta| · depth)` descendant
    /// patch is already sub-linear in the factor.
    pub fn apply_delta(&self, new_factor: &EncodedFactor, delta: &PathDelta, exec: &Exec) -> Self {
        let par = &exec.parallelism();
        let depth = new_factor.depth();
        let mut desc = self.desc.clone();
        for (level, table) in desc.iter_mut().enumerate() {
            table.resize(new_factor.cardinality(level), 0.0);
        }
        let mut patch = |path: &[Value], step: f64| {
            for (level, table) in desc.iter_mut().enumerate() {
                let code = new_factor.levels[level]
                    .dict
                    .code_of(&path[level])
                    .expect("delta value present in extended dictionary");
                table[code as usize] += step;
            }
        };
        for path in &delta.added {
            patch(path, 1.0);
        }
        for path in &delta.removed {
            patch(path, -1.0);
        }
        let level_runs_f64 = |level: usize, start: usize, len: usize| -> Vec<(u32, f64)> {
            new_factor
                .level_runs_range(level, start, len)
                .into_iter()
                .map(|(c, n)| (c, n as f64))
                .collect()
        };
        let ranges = par.ranges_for(new_factor.leaf_count());
        let runs = if ranges.len() <= 1 {
            (0..depth)
                .map(|level| level_runs_f64(level, 0, new_factor.leaf_count()))
                .collect()
        } else {
            (0..depth)
                .map(|level| {
                    let chunks =
                        par.run_shards(&ranges, |start, len| level_runs_f64(level, start, len));
                    merge_boundary_runs(chunks.iter())
                })
                .collect()
        };
        EncodedHierarchyAggregates {
            leaf_count: new_factor.leaf_count() as f64,
            desc,
            runs,
            cofs: Self::cof_tables_with(new_factor, par),
        }
    }
}

/// Concatenate per-shard run tables in shard order, joining the boundary
/// entries when one code's run was split by a shard cut. Within a shard runs
/// are maximal (adjacent entries never share a code), so joining "current
/// head extends previous tail" exactly reconstructs the unsharded scan.
fn merge_boundary_runs<'a>(chunks: impl Iterator<Item = &'a Vec<(u32, f64)>>) -> Vec<(u32, f64)> {
    let mut merged: Vec<(u32, f64)> = Vec::new();
    for chunk in chunks {
        let mut rest = &chunk[..];
        if let (Some(&(code, count)), Some(last)) = (rest.first(), merged.last_mut()) {
            if last.0 == code {
                last.1 += count;
                rest = &rest[1..];
            }
        }
        merged.extend_from_slice(rest);
    }
    merged
}

/// [`merge_boundary_runs`] for `COF` tables: entries are maximal runs of a
/// `(parent, child)` code pair, so only a shard's first entry can extend the
/// previous shard's last.
fn merge_boundary_cofs<'a>(
    chunks: impl Iterator<Item = &'a Vec<(u32, u32, f64)>>,
) -> Vec<(u32, u32, f64)> {
    let mut merged: Vec<(u32, u32, f64)> = Vec::new();
    for chunk in chunks {
        let mut rest = &chunk[..];
        if let (Some(&(a, b, count)), Some(last)) = (rest.first(), merged.last_mut()) {
            if last.0 == a && last.1 == b {
                last.2 += count;
                rest = &rest[1..];
            }
        }
        merged.extend_from_slice(rest);
    }
    merged
}

/// A cross-column `COF` view over codes: either a materialised same-hierarchy
/// table or an implicit cross-hierarchy product.
#[derive(Debug)]
pub enum EncodedCofPairs<'a> {
    /// Same hierarchy: raw `(a, b, count)` entries plus the global suffix
    /// scale to apply per entry.
    Materialized {
        /// raw `(parent code, child code, descendant leaves)` entries
        entries: &'a [(u32, u32, f64)],
        /// global scaling factor applied per entry
        scale: f64,
    },
    /// Different hierarchies: `COF[a,b] = left[a] * right[b] * scale`.
    Independent {
        /// descendant counts for the left column's hierarchy, code-indexed
        left: &'a [f64],
        /// descendant counts for the right column's hierarchy, code-indexed
        right: &'a [f64],
        /// global scaling factor
        scale: f64,
    },
}

/// All decomposed aggregates of an [`EncodedFactorization`] — the code-space
/// mirror of [`DecomposedAggregates`](crate::aggregates::DecomposedAggregates).
#[derive(Debug, Clone)]
pub struct EncodedAggregates {
    positions: Vec<AttrPosition>,
    per_hierarchy: Vec<Arc<EncodedHierarchyAggregates>>,
    leaf_counts: Vec<f64>,
}

impl EncodedAggregates {
    /// Compute the aggregates for every column of `fact` on the execution
    /// context `exec` — each hierarchy's batch runs through
    /// [`EncodedHierarchyAggregates::compute`], so all four contexts
    /// (serial, pool, exact shards, worker processes) are available and
    /// bit-identical.
    pub fn compute(fact: &EncodedFactorization, exec: &Exec) -> Self {
        let per_hierarchy = fact
            .factors()
            .iter()
            .map(|f| Arc::new(EncodedHierarchyAggregates::compute(f, exec)))
            .collect();
        Self::from_parts(fact, per_hierarchy)
    }

    /// Assemble from precomputed per-hierarchy aggregates (used by the
    /// drill-down cache, which recomputes only the drilled hierarchy).
    pub fn from_parts(
        fact: &EncodedFactorization,
        per_hierarchy: Vec<Arc<EncodedHierarchyAggregates>>,
    ) -> Self {
        let positions = (0..fact.n_cols()).map(|c| fact.position(c)).collect();
        let leaf_counts = per_hierarchy.iter().map(|h| h.leaf_count).collect();
        EncodedAggregates {
            positions,
            per_hierarchy,
            leaf_counts,
        }
    }

    /// Per-hierarchy aggregates (exposed for the drill-down cache).
    pub fn per_hierarchy(&self) -> &[Arc<EncodedHierarchyAggregates>] {
        &self.per_hierarchy
    }

    /// Column positions, in column order (exposed for the wire codecs).
    pub fn positions(&self) -> &[AttrPosition] {
        &self.positions
    }

    /// Reassemble from shipped parts — the worker-side mirror of
    /// [`EncodedAggregates::from_parts`] for hosts that hold the *decoded
    /// aggregate tables* but not the factorisation they came from. The
    /// tables must be the coordinator's actual state (shipped, not
    /// recomputed): a delta-patched table can order its entries differently
    /// from a cold rebuild, and the gram's per-cell FP sequence follows
    /// entry order.
    ///
    /// # Panics
    /// Panics if a position names a hierarchy outside `per_hierarchy`
    /// (decoders validate positions before calling this).
    pub fn from_raw_parts(
        positions: Vec<AttrPosition>,
        per_hierarchy: Vec<Arc<EncodedHierarchyAggregates>>,
    ) -> Self {
        for p in &positions {
            assert!(
                p.hierarchy < per_hierarchy.len(),
                "position names hierarchy {} of {}",
                p.hierarchy,
                per_hierarchy.len()
            );
        }
        let leaf_counts = per_hierarchy.iter().map(|h| h.leaf_count).collect();
        EncodedAggregates {
            positions,
            per_hierarchy,
            leaf_counts,
        }
    }

    /// Maintain the factorisation and its aggregates across an ingest's path
    /// deltas instead of recomputing: `fact` must be the factorisation these
    /// aggregates were computed over, with one optional [`PathDelta`] per
    /// hierarchy. Hierarchies without a (non-empty) delta re-share their
    /// encoded factor *and* per-hierarchy aggregate state by `Arc` — the
    /// common streaming case, where a day of appended rows touches the time
    /// hierarchy and leaves every other hierarchy's state byte-identical at
    /// zero cost. Changed hierarchies flow through
    /// [`EncodedFactor::apply_delta`] and
    /// [`EncodedHierarchyAggregates::apply_delta`], whose table rebuilds fan
    /// out over `exec`'s local thread budget (bit-identical to the serial
    /// patch).
    pub fn apply_delta(
        &self,
        fact: &EncodedFactorization,
        delta: &FactorizationDelta,
        exec: &Exec,
    ) -> (EncodedFactorization, EncodedAggregates) {
        assert_eq!(
            delta.per_hierarchy.len(),
            fact.factors().len(),
            "one delta slot per hierarchy"
        );
        let mut factors = Vec::with_capacity(fact.factors().len());
        let mut parts = Vec::with_capacity(fact.factors().len());
        for ((factor, part), d) in fact
            .factors()
            .iter()
            .zip(&self.per_hierarchy)
            .zip(&delta.per_hierarchy)
        {
            match d {
                Some(d) if !d.is_empty() => {
                    let next = Arc::new(factor.apply_delta(d));
                    parts.push(Arc::new(part.apply_delta(&next, d, exec)));
                    factors.push(next);
                }
                _ => {
                    factors.push(factor.clone());
                    parts.push(part.clone());
                }
            }
        }
        let next_fact = EncodedFactorization::new(factors);
        let aggregates = EncodedAggregates::from_parts(&next_fact, parts);
        (next_fact, aggregates)
    }

    /// Number of columns covered.
    pub fn n_cols(&self) -> usize {
        self.positions.len()
    }

    fn pos(&self, column: usize) -> AttrPosition {
        self.positions[column]
    }

    /// Product of leaf counts of hierarchies strictly after `h`.
    fn later_product(&self, h: usize) -> f64 {
        self.leaf_counts[h + 1..].iter().product()
    }

    /// Product of leaf counts of hierarchies strictly before `h`.
    fn earlier_product(&self, h: usize) -> f64 {
        self.leaf_counts[..h].iter().product()
    }

    /// `TOTAL` over the whole matrix: the number of conceptual rows.
    pub fn grand_total(&self) -> f64 {
        self.leaf_counts.iter().product()
    }

    /// `TOTAL_A` for the column at `column`.
    pub fn total(&self, column: usize) -> f64 {
        let p = self.pos(column);
        self.per_hierarchy[p.hierarchy].leaf_count * self.later_product(p.hierarchy)
    }

    /// How many times the suffix pattern starting at `column` repeats.
    pub fn repetitions(&self, column: usize) -> f64 {
        let p = self.pos(column);
        self.earlier_product(p.hierarchy)
    }

    /// `COUNT_A[code]` for the column at `column`.
    pub fn count(&self, column: usize, code: u32) -> f64 {
        let p = self.pos(column);
        let desc = &self.per_hierarchy[p.hierarchy].desc[p.level];
        desc.get(code as usize).copied().unwrap_or(0.0) * self.later_product(p.hierarchy)
    }

    /// The raw (unscaled) code-indexed descendant counts of `column` together
    /// with the global suffix scale. Because codes follow sorted value order,
    /// index order here equals the legacy `BTreeMap` iteration order.
    pub fn counts_raw(&self, column: usize) -> (&[f64], f64) {
        let p = self.pos(column);
        (
            &self.per_hierarchy[p.hierarchy].desc[p.level],
            self.later_product(p.hierarchy),
        )
    }

    /// The raw block-order run table of `column` plus the suffix scale —
    /// borrowed, unlike the legacy path which clones a fresh `Vec<(Value,
    /// f64)>` per call.
    pub fn block_runs_raw(&self, column: usize) -> (&[(u32, f64)], f64) {
        let p = self.pos(column);
        (
            &self.per_hierarchy[p.hierarchy].runs[p.level],
            self.later_product(p.hierarchy),
        )
    }

    /// The `COF` view for two columns `left < right` in attribute order.
    pub fn cof(&self, left: usize, right: usize) -> EncodedCofPairs<'_> {
        assert!(left < right, "cof requires left < right column order");
        let lp = self.pos(left);
        let rp = self.pos(right);
        if lp.hierarchy == rp.hierarchy {
            let agg = &self.per_hierarchy[lp.hierarchy];
            let depth = agg.desc.len();
            EncodedCofPairs::Materialized {
                entries: &agg.cofs[lp.level * depth + rp.level],
                scale: self.later_product(lp.hierarchy),
            }
        } else {
            EncodedCofPairs::Independent {
                left: &self.per_hierarchy[lp.hierarchy].desc[lp.level],
                right: &self.per_hierarchy[rp.hierarchy].desc[rp.level],
                scale: self.later_product(lp.hierarchy) / self.leaf_counts[rp.hierarchy],
            }
        }
    }

    /// `Σ_{a,b} COF_{A,B}[a,b] · f[a] · g[b]` with feature columns as flat
    /// slices. The operation order matches the legacy closure-based
    /// `cof_weighted_sum` exactly.
    pub fn cof_weighted_sum(&self, left: usize, right: usize, f: &[f64], g: &[f64]) -> f64 {
        match self.cof(left, right) {
            EncodedCofPairs::Materialized { entries, scale } => entries
                .iter()
                .map(|&(a, b, c)| (c * scale) * f[a as usize] * g[b as usize])
                .sum(),
            EncodedCofPairs::Independent { left, right, scale } => {
                let ls: f64 = left.iter().zip(f).map(|(c, fv)| c * fv).sum();
                let rs: f64 = right.iter().zip(g).map(|(c, gv)| c * gv).sum();
                ls * rs * scale
            }
        }
    }

    /// `Σ_a COUNT_A[a] · f[a]` over a code-indexed weight slice.
    pub fn count_weighted_sum(&self, column: usize, f: impl Fn(usize) -> f64) -> f64 {
        let (desc, scale) = self.counts_raw(column);
        desc.iter()
            .enumerate()
            .map(|(code, c)| (c * scale) * f(code))
            .sum()
    }
}

/// Compare two encoded aggregate states for *semantic* equality in value
/// space, returning `None` when equal or `Some(description)` of the first
/// mismatch.
///
/// This is the equality contract behind delta maintenance: a
/// delta-maintained dictionary keeps stable codes (with appended codes for
/// values first seen mid-stream, and zero-count codes for values whose
/// paths vanished), so code *numbering* is the one representational freedom
/// between a maintained state and a cold rebuild. Everything else — grand
/// total, per-column `TOTAL`/repetitions, per-value `COUNT`s (checked in
/// both directions), decoded block-run sequences and decoded same-hierarchy
/// `COF` entry sequences — must match exactly (`==`, not tolerance: every
/// compared quantity is an integer count, or a product of integer counts
/// accumulated in identical path order). Used by the in-crate delta tests,
/// the workspace property tests and the streaming benchmark's correctness
/// gate, so there is one source of truth for "delta equals cold".
pub fn semantic_diff(
    a_fact: &EncodedFactorization,
    a: &EncodedAggregates,
    b_fact: &EncodedFactorization,
    b: &EncodedAggregates,
) -> Option<String> {
    if a.grand_total() != b.grand_total() {
        return Some(format!(
            "grand_total {} != {}",
            a.grand_total(),
            b.grand_total()
        ));
    }
    if a.n_cols() != b.n_cols() {
        return Some(format!("n_cols {} != {}", a.n_cols(), b.n_cols()));
    }
    for c in 0..a.n_cols() {
        if a.total(c) != b.total(c) {
            return Some(format!("TOTAL col {c}: {} != {}", a.total(c), b.total(c)));
        }
        if a.repetitions(c) != b.repetitions(c) {
            return Some(format!("repetitions col {c}"));
        }
        // COUNT per decoded value, both directions (either dictionary may
        // hold values the other never saw — their counts must be zero).
        let (a_desc, a_scale) = a.counts_raw(c);
        let (b_desc, b_scale) = b.counts_raw(c);
        let count_of = |fact: &EncodedFactorization, desc: &[f64], scale: f64, value: &Value| {
            fact.dict(c)
                .code_of(value)
                .map(|code| desc[code as usize] * scale)
                .unwrap_or(0.0)
        };
        for (code, count) in a_desc.iter().enumerate() {
            let value = a_fact.dict(c).value(code as u32);
            let other = count_of(b_fact, b_desc, b_scale, value);
            if count * a_scale != other {
                return Some(format!(
                    "COUNT col {c} value {value}: {} != {other}",
                    count * a_scale
                ));
            }
        }
        for (code, count) in b_desc.iter().enumerate() {
            let value = b_fact.dict(c).value(code as u32);
            let other = count_of(a_fact, a_desc, a_scale, value);
            if count * b_scale != other {
                return Some(format!(
                    "COUNT col {c} value {value}: {other} != {}",
                    count * b_scale
                ));
            }
        }
        // Block runs: identical decoded (value, scaled count) sequence —
        // path order is value order on both sides.
        let (a_runs, ar_scale) = a.block_runs_raw(c);
        let (b_runs, br_scale) = b.block_runs_raw(c);
        if a_runs.len() != b_runs.len() {
            return Some(format!(
                "run count col {c}: {} != {}",
                a_runs.len(),
                b_runs.len()
            ));
        }
        for (i, (&(ac, an), &(bc, bn))) in a_runs.iter().zip(b_runs).enumerate() {
            if a_fact.dict(c).value(ac) != b_fact.dict(c).value(bc)
                || an * ar_scale != bn * br_scale
            {
                return Some(format!("run {i} col {c} differs"));
            }
        }
    }
    // Same-hierarchy COF tables: identical decoded entry sequences. The
    // cross-hierarchy (Independent) case is fully determined by the
    // per-column counts compared above.
    for left in 0..a.n_cols() {
        for right in (left + 1)..a.n_cols() {
            match (a.cof(left, right), b.cof(left, right)) {
                (
                    EncodedCofPairs::Materialized {
                        entries: ae,
                        scale: asc,
                    },
                    EncodedCofPairs::Materialized {
                        entries: be,
                        scale: bsc,
                    },
                ) => {
                    if ae.len() != be.len() {
                        return Some(format!("COF ({left},{right}) entry count"));
                    }
                    for (i, (&(a1, a2, an), &(b1, b2, bn))) in ae.iter().zip(be).enumerate() {
                        if a_fact.dict(left).value(a1) != b_fact.dict(left).value(b1)
                            || a_fact.dict(right).value(a2) != b_fact.dict(right).value(b2)
                            || an * asc != bn * bsc
                        {
                            return Some(format!("COF ({left},{right}) entry {i} differs"));
                        }
                    }
                }
                (EncodedCofPairs::Independent { .. }, EncodedCofPairs::Independent { .. }) => {}
                _ => return Some(format!("COF ({left},{right}) shape mismatch")),
            }
        }
    }
    None
}

/// Code-indexed feature columns: the flat mirror of [`FeatureMap`].
#[derive(Debug, Clone, Default)]
pub struct EncodedFeatureMap {
    columns: Vec<Vec<f64>>,
}

impl EncodedFeatureMap {
    /// Bake a `Value`-keyed feature map into code-indexed columns using the
    /// factorisation's dictionaries (missing values take the map's default,
    /// exactly as the legacy lookup would).
    pub fn encode(features: &FeatureMap, fact: &EncodedFactorization) -> Self {
        let columns = (0..fact.n_cols())
            .map(|c| {
                fact.dict(c)
                    .values()
                    .iter()
                    .map(|v| features.value(c, v))
                    .collect()
            })
            .collect();
        EncodedFeatureMap { columns }
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Look up the feature value of `code` in `column`.
    #[inline]
    pub fn value(&self, column: usize, code: u32) -> f64 {
        self.columns[column][code as usize]
    }

    /// The full code-indexed feature column.
    pub fn column(&self, column: usize) -> &[f64] {
        &self.columns[column]
    }

    /// All code-indexed columns (exposed for the wire codecs).
    pub fn columns(&self) -> &[Vec<f64>] {
        &self.columns
    }

    /// Reassemble from shipped code-indexed columns — the worker-side
    /// mirror of [`EncodedFeatureMap::encode`] for hosts without the
    /// `Value`-keyed feature map.
    pub fn from_columns(columns: Vec<Vec<f64>>) -> Self {
        EncodedFeatureMap { columns }
    }
}

/// Everything the encoded execution path needs about one training design:
/// the encoded factorisation, the code-indexed features, and the aggregates.
#[derive(Debug, Clone)]
pub struct EncodedDesign {
    /// The dictionary-encoded factorisation.
    pub factorization: EncodedFactorization,
    /// Code-indexed feature columns.
    pub features: EncodedFeatureMap,
    /// The decomposed aggregates over codes.
    pub aggregates: EncodedAggregates,
}

impl EncodedDesign {
    /// Encode a `Value`-keyed factorisation + feature map and compute the
    /// aggregates from scratch (callers with a drill-down session use its
    /// cache instead).
    pub fn build(fact: &Factorization, features: &FeatureMap) -> Self {
        let factorization = EncodedFactorization::encode(fact);
        let features = EncodedFeatureMap::encode(features, &factorization);
        let aggregates = EncodedAggregates::compute(&factorization, &Exec::Serial);
        EncodedDesign {
            factorization,
            features,
            aggregates,
        }
    }

    /// Assemble from pre-encoded parts (the drill-down session path).
    pub fn from_parts(
        factorization: EncodedFactorization,
        aggregates: EncodedAggregates,
        features: &FeatureMap,
    ) -> Self {
        let features = EncodedFeatureMap::encode(features, &factorization);
        EncodedDesign {
            factorization,
            features,
            aggregates,
        }
    }
}

// ---------------------------------------------------------------------------
// Factorised operators on codes (Algorithms 2–4)
// ---------------------------------------------------------------------------

/// The gram cell `(p, q)` (upper triangle, `p <= q`) — the one place the
/// per-entry floating-point sequence lives, shared by the serial and the
/// sharded gram so they cannot drift.
#[inline]
fn gram_entry(aggs: &EncodedAggregates, features: &EncodedFeatureMap, p: usize, q: usize) -> f64 {
    let fp = features.column(p);
    if p == q {
        aggs.repetitions(p)
            * aggs.count_weighted_sum(p, |code| {
                let f = fp[code];
                f * f
            })
    } else {
        aggs.repetitions(p) * aggs.cof_weighted_sum(p, q, fp, features.column(q))
    }
}

/// Factorised gram matrix `Xᵀ·X` (Algorithm 2) on the encoded backend,
/// with the upper-triangle cells fanned out over `par`'s threads. The gram's
/// operands (aggregates and baked features) live on the coordinator, so
/// this operator takes the local thread budget directly
/// ([`Exec::parallelism`]) and never goes remote. Per-shard partials fill
/// disjoint cells of the one SPD system, and every cell runs the identical
/// serial accumulation (`gram_entry`), so the matrix is bit-identical for
/// any budget.
pub fn gram(aggs: &EncodedAggregates, features: &EncodedFeatureMap, par: &Parallelism) -> Matrix {
    let m = aggs.n_cols();
    let mut out = Matrix::zeros(m, m);
    if par.is_serial() {
        for p in 0..m {
            out.set(p, p, gram_entry(aggs, features, p, p));
            for q in (p + 1)..m {
                let val = gram_entry(aggs, features, p, q);
                out.set(p, q, val);
                out.set(q, p, val);
            }
        }
        return out;
    }
    let pairs = gram_pairs(m);
    let values = par.map_items(pairs.len(), |i| {
        let (p, q) = pairs[i];
        gram_entry(aggs, features, p, q)
    });
    for (&(p, q), &val) in pairs.iter().zip(&values) {
        out.set(p, q, val);
        out.set(q, p, val);
    }
    out
}

/// The canonical upper-triangle cell enumeration of an `m × m` gram matrix:
/// `(p, q)` with `p <= q` in row-major order. This is the index space every
/// gram partial speaks — the sharded gram fans these cells over threads and
/// the remote gram ships contiguous ranges of them to workers, so the cell
/// at index `k` means the same `(p, q)` on every host.
pub fn gram_pairs(m: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::with_capacity(m * (m + 1) / 2);
    for p in 0..m {
        for q in p..m {
            pairs.push((p, q));
        }
    }
    pairs
}

/// Gram cells `[start, start + len)` of the [`gram_pairs`] enumeration —
/// the worker-side gram partial. Each cell runs the identical serial
/// accumulation ([`gram_entry`]), so partials computed on any host drop
/// bit-exactly into the coordinator's matrix.
///
/// Returns `None` when the range falls outside the enumeration (hostile or
/// mismatched request — callers answer typed, never panic).
pub fn gram_cells(
    aggs: &EncodedAggregates,
    features: &EncodedFeatureMap,
    start: usize,
    len: usize,
) -> Option<Vec<f64>> {
    let m = aggs.n_cols();
    if features.n_cols() != m {
        return None;
    }
    let n_cells = m * (m + 1) / 2;
    if start.checked_add(len)? > n_cells {
        return None;
    }
    let pairs = gram_pairs(m);
    Some(
        pairs[start..start + len]
            .iter()
            .map(|&(p, q)| gram_entry(aggs, features, p, q))
            .collect(),
    )
}

/// One output cell of the factorised left multiplication: `row i of A` (as a
/// prefix sum) against column `p` of the conceptual matrix. Shared by the
/// serial and the sharded left multiplication.
#[inline]
fn left_mult_entry(
    prefix: &PrefixSum,
    aggs: &EncodedAggregates,
    features: &EncodedFeatureMap,
    p: usize,
    n: usize,
) -> f64 {
    let (runs, scale) = aggs.block_runs_raw(p);
    let fp = features.column(p);
    let reps = aggs.repetitions(p) as usize;
    let mut acc = 0.0;
    let mut start = 0usize;
    for _ in 0..reps {
        for &(code, count) in runs {
            let len = (count * scale) as usize;
            let range = prefix.range_sum(start, start + len);
            acc += fp[code as usize] * range;
            start += len;
        }
    }
    debug_assert_eq!(start, n);
    acc
}

/// Factorised left multiplication `A·X` (Algorithm 3) on the encoded backend.
pub fn left_mult(a: &Matrix, aggs: &EncodedAggregates, features: &EncodedFeatureMap) -> Matrix {
    let m = aggs.n_cols();
    let n = aggs.grand_total() as usize;
    assert_eq!(
        a.cols(),
        n,
        "left operand must have as many columns as the factorised matrix has rows"
    );
    let mut out = Matrix::zeros(a.rows(), m);
    for i in 0..a.rows() {
        let prefix = PrefixSum::new(a.row(i));
        for p in 0..m {
            out.set(i, p, left_mult_entry(&prefix, aggs, features, p, n));
        }
    }
    out
}

/// `Xᵀ·v` for a column vector `v`, via the factorised left multiplication,
/// with the per-column accumulations fanned out over `par` (the prefix sum
/// over `v` is built once and shared read-only). Like [`gram`], the
/// operands are coordinator-resident, so the operator takes the local
/// thread budget directly and never goes remote. Each column runs
/// `left_mult_entry` exactly as the serial path does, so the result vector
/// is bit-identical for any budget.
pub fn transpose_vec_mult(
    v: &[f64],
    aggs: &EncodedAggregates,
    features: &EncodedFeatureMap,
    par: &Parallelism,
) -> Vec<f64> {
    if par.is_serial() {
        let row = Matrix::row_vector(v);
        let res = left_mult(&row, aggs, features);
        return res.row(0).to_vec();
    }
    let n = aggs.grand_total() as usize;
    assert_eq!(
        v.len(),
        n,
        "vector operand must have as many entries as the factorised matrix has rows"
    );
    let prefix = PrefixSum::new(v);
    par.map_items(aggs.n_cols(), |p| {
        left_mult_entry(&prefix, aggs, features, p, n)
    })
}

/// The changes between two consecutive rows of the conceptual matrix, in
/// code space.
#[derive(Debug, Clone)]
pub struct EncodedRowDelta {
    /// Index of the row these changes produce.
    pub row: usize,
    /// `(column, new code)` pairs in increasing column order; the first row
    /// lists every column.
    pub changes: Vec<(usize, u32)>,
}

/// Delta-based row iterator (Algorithm 1) over an [`EncodedFactorization`].
#[derive(Debug)]
pub struct EncodedRowIter<'a> {
    fact: &'a EncodedFactorization,
    indices: Vec<usize>,
    row: usize,
    n_rows: usize,
}

impl<'a> EncodedRowIter<'a> {
    /// Create an iterator positioned before the first row.
    pub fn new(fact: &'a EncodedFactorization) -> Self {
        EncodedRowIter {
            fact,
            indices: vec![0; fact.factors().len()],
            row: 0,
            n_rows: fact.n_rows(),
        }
    }

    fn first_row_delta(&self) -> EncodedRowDelta {
        let mut changes = Vec::with_capacity(self.fact.n_cols());
        for (h, factor) in self.fact.factors().iter().enumerate() {
            for level in 0..factor.depth() {
                changes.push((self.fact.column_of(h, level), factor.code(level, 0)));
            }
        }
        EncodedRowDelta { row: 0, changes }
    }
}

impl<'a> Iterator for EncodedRowIter<'a> {
    type Item = EncodedRowDelta;

    fn next(&mut self) -> Option<Self::Item> {
        if self.row >= self.n_rows || self.n_rows == 0 {
            return None;
        }
        if self.row == 0 {
            self.row = 1;
            return Some(self.first_row_delta());
        }
        // Advance the mixed-radix counter (last hierarchy fastest) and record
        // which hierarchies changed path.
        let mut changed: Vec<(usize, usize, usize)> = Vec::new();
        let mut h = self.fact.factors().len();
        while h > 0 {
            h -= 1;
            let leafs = self.fact.factors()[h].leaf_count();
            let old = self.indices[h];
            let new = (old + 1) % leafs;
            self.indices[h] = new;
            changed.push((h, old, new));
            if new != 0 {
                break;
            }
        }
        let mut changes: Vec<(usize, u32)> = Vec::new();
        for (h, old, new) in changed {
            let factor = &self.fact.factors()[h];
            for level in 0..factor.depth() {
                let new_code = factor.code(level, new);
                if factor.code(level, old) != new_code {
                    changes.push((self.fact.column_of(h, level), new_code));
                }
            }
        }
        changes.sort_by_key(|(c, _)| *c);
        let delta = EncodedRowDelta {
            row: self.row,
            changes,
        };
        self.row += 1;
        Some(delta)
    }
}

/// Factorised right multiplication `X·A` (Algorithm 4) on the encoded
/// backend, updating each output row incrementally from the previous one.
pub fn right_mult(fact: &EncodedFactorization, features: &EncodedFeatureMap, a: &Matrix) -> Matrix {
    let m = fact.n_cols();
    let n = fact.n_rows();
    assert_eq!(
        a.rows(),
        m,
        "right operand must have as many rows as the factorised matrix has columns"
    );
    let p = a.cols();
    let mut out = Matrix::zeros(n, p);
    let mut current = vec![0.0f64; m];
    let mut dots = vec![0.0f64; p];
    for delta in EncodedRowIter::new(fact) {
        for &(col, code) in &delta.changes {
            let new_f = features.value(col, code);
            let old_f = current[col];
            if new_f != old_f {
                for (j, d) in dots.iter_mut().enumerate() {
                    *d += (new_f - old_f) * a.get(col, j);
                }
                current[col] = new_f;
            }
        }
        for (j, d) in dots.iter().enumerate() {
            out.set(delta.row, j, *d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregates::DecomposedAggregates;
    use crate::ops;

    fn paper_example() -> (Factorization, FeatureMap) {
        let time = HierarchyFactor::from_paths(
            "time",
            vec![AttrId(0)],
            vec![vec![Value::str("t1")], vec![Value::str("t2")]],
        );
        let geo = HierarchyFactor::from_paths(
            "geo",
            vec![AttrId(1), AttrId(2)],
            vec![
                vec![Value::str("d1"), Value::str("v1")],
                vec![Value::str("d1"), Value::str("v2")],
                vec![Value::str("d2"), Value::str("v3")],
            ],
        );
        let fact = Factorization::new(vec![time, geo]);
        let mut features = FeatureMap::zeros(3);
        features.set(0, Value::str("t1"), 1.5);
        features.set(0, Value::str("t2"), 3.0);
        features.set(1, Value::str("d1"), 4.0);
        features.set(1, Value::str("d2"), -1.0);
        features.set(2, Value::str("v1"), 1.25);
        features.set(2, Value::str("v2"), 0.25);
        features.set(2, Value::str("v3"), 5.0);
        (fact, features)
    }

    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = seed;
        Matrix::from_fn(rows, cols, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / u32::MAX as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn encoding_round_trips_through_dictionaries() {
        let (fact, _) = paper_example();
        let enc = EncodedFactorization::encode(&fact);
        assert_eq!(enc.n_cols(), fact.n_cols());
        assert_eq!(enc.n_rows(), fact.n_rows());
        for (h, factor) in fact.hierarchies().iter().enumerate() {
            let ef = &enc.factors()[h];
            for level in 0..factor.depth() {
                for (i, path) in factor.paths.iter().enumerate() {
                    let code = ef.code(level, i);
                    assert_eq!(ef.levels[level].dict.value(code), &path[level]);
                }
            }
        }
    }

    #[test]
    fn encoded_aggregates_are_bit_identical_to_legacy() {
        let (fact, _) = paper_example();
        let legacy = DecomposedAggregates::compute(&fact);
        let enc = EncodedFactorization::encode(&fact);
        let encoded = EncodedAggregates::compute(&enc, &Exec::Serial);
        assert_eq!(legacy.grand_total(), encoded.grand_total());
        for c in 0..fact.n_cols() {
            assert_eq!(legacy.total(c), encoded.total(c));
            assert_eq!(legacy.repetitions(c), encoded.repetitions(c));
            let (desc, scale) = encoded.counts_raw(c);
            let legacy_counts = legacy.counts(c);
            assert_eq!(legacy_counts.len(), desc.len());
            for ((value, lc), (code, ec)) in legacy_counts.iter().zip(desc.iter().enumerate()) {
                assert_eq!(enc.dict(c).value(code as u32), value);
                assert_eq!(*lc, ec * scale);
                assert_eq!(legacy.count(c, value), encoded.count(c, code as u32));
            }
            let (runs, rscale) = encoded.block_runs_raw(c);
            let legacy_runs = legacy.block_runs(c);
            assert_eq!(legacy_runs.len(), runs.len());
            for ((lv, lc), &(code, rc)) in legacy_runs.iter().zip(runs) {
                assert_eq!(enc.dict(c).value(code), lv);
                assert_eq!(*lc, rc * rscale);
            }
        }
    }

    #[test]
    fn encoded_ops_are_bit_identical_to_legacy_ops() {
        let (fact, features) = paper_example();
        let legacy = DecomposedAggregates::compute(&fact);
        let enc = EncodedFactorization::encode(&fact);
        let encoded = EncodedAggregates::compute(&enc, &Exec::Serial);
        let enc_features = EncodedFeatureMap::encode(&features, &enc);

        assert_eq!(
            ops::gram(&legacy, &features),
            gram(&encoded, &enc_features, &Parallelism::serial())
        );

        let a = pseudo_random(3, fact.n_rows(), 5);
        assert_eq!(
            ops::left_mult(&a, &legacy, &features),
            left_mult(&a, &encoded, &enc_features)
        );

        let b = pseudo_random(fact.n_cols(), 2, 17);
        assert_eq!(
            ops::right_mult(&fact, &features, &b),
            right_mult(&enc, &enc_features, &b)
        );

        let v: Vec<f64> = (0..fact.n_rows()).map(|i| i as f64 * 0.5 - 1.0).collect();
        assert_eq!(
            ops::transpose_vec_mult(&v, &legacy, &features),
            transpose_vec_mult(&v, &encoded, &enc_features, &Parallelism::serial())
        );
    }

    #[test]
    fn encoded_row_iter_mirrors_value_row_iter() {
        let (fact, _) = paper_example();
        let enc = EncodedFactorization::encode(&fact);
        let legacy: Vec<crate::row_iter::RowDelta> = crate::RowIter::new(&fact).collect();
        let encoded: Vec<EncodedRowDelta> = EncodedRowIter::new(&enc).collect();
        assert_eq!(legacy.len(), encoded.len());
        for (l, e) in legacy.iter().zip(&encoded) {
            assert_eq!(l.row, e.row);
            assert_eq!(l.changes.len(), e.changes.len());
            for ((lc, lv), &(ec, code)) in l.changes.iter().zip(&e.changes) {
                assert_eq!(*lc, ec);
                assert_eq!(enc.dict(ec).value(code), lv);
            }
        }
    }

    /// Semantic (decoded) equality of two aggregate states whose dictionaries
    /// may number codes differently — delegates to [`semantic_diff`], the
    /// shared delta-vs-cold equality contract.
    fn assert_semantically_equal(
        a_fact: &EncodedFactorization,
        a: &EncodedAggregates,
        b_fact: &EncodedFactorization,
        b: &EncodedAggregates,
    ) {
        assert_eq!(semantic_diff(a_fact, a, b_fact, b), None);
    }

    #[test]
    fn apply_delta_matches_recompute_with_new_values_and_removals() {
        let (fact, _) = paper_example();
        let enc = EncodedFactorization::encode(&fact);
        let aggs = EncodedAggregates::compute(&enc, &Exec::Serial);
        // geo: remove (d1, v2), add (d1, v0) (new leaf value sorting first)
        // and (d3, v9) (new district and new leaf).
        let delta = FactorizationDelta::none(2).with(
            1,
            PathDelta {
                added: vec![
                    vec![Value::str("d1"), Value::str("v0")],
                    vec![Value::str("d3"), Value::str("v9")],
                ],
                removed: vec![vec![Value::str("d1"), Value::str("v2")]],
            },
        );
        let (next_fact, next_aggs) = aggs.apply_delta(&enc, &delta, &Exec::Serial);
        // the untouched time hierarchy is re-shared, not copied
        assert!(Arc::ptr_eq(&enc.factors()[0], &next_fact.factors()[0]));
        assert!(Arc::ptr_eq(
            &aggs.per_hierarchy()[0],
            &next_aggs.per_hierarchy()[0]
        ));
        // existing codes stayed stable: d1 and d2 keep their old codes
        for v in ["d1", "d2"] {
            assert_eq!(
                enc.dict(1).code_of(&Value::str(v)),
                next_fact.dict(1).code_of(&Value::str(v))
            );
        }
        // cold rebuild of the same post-delta path set
        let geo = HierarchyFactor::from_paths(
            "geo",
            vec![AttrId(1), AttrId(2)],
            vec![
                vec![Value::str("d1"), Value::str("v0")],
                vec![Value::str("d1"), Value::str("v1")],
                vec![Value::str("d2"), Value::str("v3")],
                vec![Value::str("d3"), Value::str("v9")],
            ],
        );
        let time = HierarchyFactor::from_paths(
            "time",
            vec![AttrId(0)],
            vec![vec![Value::str("t1")], vec![Value::str("t2")]],
        );
        let cold_fact = EncodedFactorization::encode(&Factorization::new(vec![time, geo]));
        let cold_aggs = EncodedAggregates::compute(&cold_fact, &Exec::Serial);
        assert_semantically_equal(&next_fact, &next_aggs, &cold_fact, &cold_aggs);
    }

    #[test]
    fn path_delta_between_diffs_sorted_tables() {
        let (fact, _) = paper_example();
        let geo = EncodedFactor::encode(&fact.hierarchies()[1], &Exec::Serial);
        let new_paths = vec![
            vec![Value::str("d1"), Value::str("v1")],
            vec![Value::str("d2"), Value::str("v3")],
            vec![Value::str("d2"), Value::str("v4")],
        ];
        let delta = PathDelta::between(&geo, &new_paths);
        assert_eq!(delta.added, vec![vec![Value::str("d2"), Value::str("v4")]]);
        assert_eq!(
            delta.removed,
            vec![vec![Value::str("d1"), Value::str("v2")]]
        );
        assert_eq!(delta.len(), 2);
        assert!(!delta.is_empty());
        // applying the diff reproduces the new table exactly
        let next = geo.apply_delta(&delta);
        assert_eq!(next.leaf_count(), 3);
        for (i, path) in new_paths.iter().enumerate() {
            assert_eq!(next.cmp_path(i, path), std::cmp::Ordering::Equal);
            assert_eq!(&next.decode_path(i), path);
        }
        // empty diff shares the code columns
        let noop = PathDelta::between(&next, &new_paths);
        assert!(noop.is_empty());
    }

    #[test]
    fn empty_factor_is_handled() {
        let empty = HierarchyFactor::from_paths("empty", vec![AttrId(0)], Vec::new());
        let enc = EncodedFactorization::encode(&Factorization::new(vec![empty]));
        assert_eq!(enc.n_rows(), 0);
        let aggs = EncodedAggregates::compute(&enc, &Exec::Serial);
        assert_eq!(aggs.grand_total(), 0.0);
        assert_eq!(EncodedRowIter::new(&enc).count(), 0);
    }

    #[test]
    fn every_exec_context_is_bit_identical_to_serial() {
        let (fact, _) = paper_example();
        let enc = EncodedFactorization::encode(&fact);
        for factor in enc.factors() {
            let serial = EncodedHierarchyAggregates::compute(factor, &Exec::Serial);
            for shards in [1, 2, 3, 7, 64] {
                assert_eq!(
                    serial,
                    EncodedHierarchyAggregates::compute(factor, &Exec::Shards(shards)),
                    "{shards} shards"
                );
            }
            for threads in [1, 2, 4] {
                assert_eq!(
                    serial,
                    EncodedHierarchyAggregates::compute(factor, &Exec::pool(threads)),
                    "{threads}-thread pool"
                );
            }
        }
    }

    /// In-process `RemoteTransport`: `ensure_state` stores the shipped blob
    /// by `(domain, key)`, and `scatter` answers each `OP_AGG_RANGE` request
    /// through the *real* payload codecs — decode the request, decode the
    /// stored factor, `compute_range`, encode the partial. Exercises the
    /// entire remote aggregate path except the socket.
    struct Loopback {
        workers: usize,
        state: std::sync::Mutex<std::collections::HashMap<(u8, u64), Vec<u8>>>,
    }

    impl Loopback {
        fn new(workers: usize) -> Self {
            Loopback {
                workers,
                state: std::sync::Mutex::new(std::collections::HashMap::new()),
            }
        }
    }

    impl reptile_relational::RemoteTransport for Loopback {
        fn workers(&self) -> usize {
            self.workers
        }

        fn ensure_relation(
            &self,
            _relation: &Arc<reptile_relational::Relation>,
        ) -> Result<Vec<(usize, usize)>, RemoteError> {
            Err(RemoteError::Transport(
                "factor loopback ships no relations".into(),
            ))
        }

        fn ensure_state(
            &self,
            domain: u8,
            key: u64,
            encode: &dyn Fn() -> Vec<u8>,
        ) -> Result<(), RemoteError> {
            self.state
                .lock()
                .unwrap()
                .entry((domain, key))
                .or_insert_with(encode);
            Ok(())
        }

        fn scatter(
            &self,
            op: u8,
            requests: Vec<Option<Vec<u8>>>,
        ) -> Result<Vec<Option<Vec<u8>>>, RemoteError> {
            assert_eq!(op, OP_AGG_RANGE);
            assert_eq!(requests.len(), self.workers);
            let state = self.state.lock().unwrap();
            requests
                .into_iter()
                .map(|request| {
                    let Some(request) = request else {
                        return Ok(None);
                    };
                    let (key, start, len) = payload::decode_agg_request(&request)
                        .map_err(|e| RemoteError::Protocol(e.to_string()))?;
                    let blob = state
                        .get(&(DOMAIN_FACTOR, key))
                        .ok_or_else(|| RemoteError::Worker(format!("no state {key:#x}")))?;
                    let factor = payload::decode_factor(blob)
                        .map_err(|e| RemoteError::Protocol(e.to_string()))?;
                    let part = EncodedHierarchyAggregates::compute_range(&factor, start, len);
                    Ok(Some(payload::encode_aggregates(&part)))
                })
                .collect()
        }
    }

    #[test]
    fn remote_aggregates_are_bit_identical_to_serial() {
        let (fact, _) = paper_example();
        let enc = EncodedFactorization::encode(&fact);
        for workers in [1, 2, 3, 8] {
            let transport = Arc::new(Loopback::new(workers));
            let remote = Remote::new(transport.clone());
            let exec = Exec::Remote(remote.clone());
            for factor in enc.factors() {
                let serial = EncodedHierarchyAggregates::compute(factor, &Exec::Serial);
                let distributed = EncodedHierarchyAggregates::compute_remote(factor, &remote)
                    .expect("loopback scatter");
                assert_eq!(serial, distributed, "{workers} workers");
                // The infallible surface takes the same path.
                assert_eq!(serial, EncodedHierarchyAggregates::compute(factor, &exec));
            }
            // The whole-factorisation surface propagates the context.
            let serial_all = EncodedAggregates::compute(&enc, &Exec::Serial);
            let remote_all = EncodedAggregates::compute(&enc, &exec);
            assert_eq!(semantic_diff(&enc, &serial_all, &enc, &remote_all), None);
            // Each factor shipped exactly once, keyed by fingerprint.
            assert_eq!(
                transport.state.lock().unwrap().len(),
                enc.factors().len(),
                "content-addressed state ships once per factor"
            );
        }
    }

    #[test]
    fn remote_failure_falls_back_to_local_pool() {
        struct Refusing;
        impl reptile_relational::RemoteTransport for Refusing {
            fn workers(&self) -> usize {
                2
            }
            fn ensure_relation(
                &self,
                _relation: &Arc<reptile_relational::Relation>,
            ) -> Result<Vec<(usize, usize)>, RemoteError> {
                Err(RemoteError::Transport("down".into()))
            }
            fn ensure_state(
                &self,
                _domain: u8,
                _key: u64,
                _encode: &dyn Fn() -> Vec<u8>,
            ) -> Result<(), RemoteError> {
                Err(RemoteError::Transport("down".into()))
            }
            fn scatter(
                &self,
                _op: u8,
                _requests: Vec<Option<Vec<u8>>>,
            ) -> Result<Vec<Option<Vec<u8>>>, RemoteError> {
                Err(RemoteError::Transport("down".into()))
            }
        }
        let (fact, _) = paper_example();
        let enc = EncodedFactorization::encode(&fact);
        let factor = &enc.factors()[1];
        let exec = Exec::Remote(Remote::new(Arc::new(Refusing)));
        let before = reptile_obs::counter_value(Counter::RemoteFallbacks);
        let aggs = EncodedHierarchyAggregates::compute(factor, &exec);
        assert_eq!(
            aggs,
            EncodedHierarchyAggregates::compute(factor, &Exec::Serial),
            "fallback result is still exact"
        );
        assert_eq!(
            reptile_obs::counter_value(Counter::RemoteFallbacks),
            before + 1,
            "the degradation is observable"
        );
    }

    #[test]
    fn fingerprint_tracks_content_across_epochs() {
        let (fact, _) = paper_example();
        let geo = EncodedFactor::encode(&fact.hierarchies()[1], &Exec::Serial);
        let clone = geo.clone();
        assert_eq!(geo.fingerprint(), clone.fingerprint());
        // A delta produces a *different* factor with a different
        // fingerprint — post-ingest state ships under a new key, so a stale
        // worker copy can never answer for the new epoch.
        let delta = PathDelta {
            added: vec![vec![Value::str("d9"), Value::str("v9")]],
            removed: vec![],
        };
        let next = geo.apply_delta(&delta);
        assert_ne!(geo.fingerprint(), next.fingerprint());
        // Same content rebuilt from scratch -> same fingerprint.
        let rebuilt = payload::decode_factor(&payload::encode_factor(&next)).unwrap();
        assert_eq!(next.fingerprint(), rebuilt.fingerprint());
    }
}
