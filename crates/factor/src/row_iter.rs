//! Delta-based row iteration over the conceptual matrix (Algorithm 1).
//!
//! Adjacent rows of the factorised matrix differ in only a few trailing
//! columns (usually just the most specific attribute of the last hierarchy).
//! The row iterator walks the rows in order and yields, for each row, the set
//! of `(column, value)` changes relative to the previous row. The factorised
//! right multiplication and the per-cluster operators are built on it.

use crate::factorization::Factorization;
use reptile_relational::Value;

/// The changes between two consecutive rows of the conceptual matrix.
#[derive(Debug, Clone)]
pub struct RowDelta {
    /// Index of the row these changes produce.
    pub row: usize,
    /// `(column, new value)` pairs, in increasing column order. For the first
    /// row this contains every column.
    pub changes: Vec<(usize, Value)>,
}

impl RowDelta {
    /// Smallest changed column; `None` for an empty delta.
    pub fn min_changed_column(&self) -> Option<usize> {
        self.changes.first().map(|(c, _)| *c)
    }
}

/// Iterator over [`RowDelta`]s of a [`Factorization`].
#[derive(Debug)]
pub struct RowIter<'a> {
    fact: &'a Factorization,
    /// per-hierarchy current path indices
    indices: Vec<usize>,
    row: usize,
    n_rows: usize,
}

impl<'a> RowIter<'a> {
    /// Create an iterator positioned before the first row.
    pub fn new(fact: &'a Factorization) -> Self {
        RowIter {
            fact,
            indices: vec![0; fact.hierarchies().len()],
            row: 0,
            n_rows: fact.n_rows(),
        }
    }

    fn first_row_delta(&self) -> RowDelta {
        let mut changes = Vec::with_capacity(self.fact.n_cols());
        for (h, factor) in self.fact.hierarchies().iter().enumerate() {
            for level in 0..factor.depth() {
                changes.push((
                    self.fact.column_of(h, level),
                    factor.paths[0][level].clone(),
                ));
            }
        }
        RowDelta { row: 0, changes }
    }
}

impl<'a> Iterator for RowIter<'a> {
    type Item = RowDelta;

    fn next(&mut self) -> Option<Self::Item> {
        if self.row >= self.n_rows || self.n_rows == 0 {
            return None;
        }
        if self.row == 0 {
            self.row = 1;
            return Some(self.first_row_delta());
        }
        // Advance the mixed-radix counter (last hierarchy fastest) and record
        // which hierarchies changed path.
        let mut changed: Vec<(usize, usize, usize)> = Vec::new(); // (hierarchy, old path, new path)
        let mut h = self.fact.hierarchies().len();
        loop {
            if h == 0 {
                break;
            }
            h -= 1;
            let leafs = self.fact.hierarchies()[h].leaf_count();
            let old = self.indices[h];
            let new = (old + 1) % leafs;
            self.indices[h] = new;
            changed.push((h, old, new));
            if new != 0 {
                break;
            }
            // wrapped: carry into the previous hierarchy
        }
        let mut changes: Vec<(usize, Value)> = Vec::new();
        for (h, old, new) in changed {
            let factor = &self.fact.hierarchies()[h];
            let old_path = &factor.paths[old];
            let new_path = &factor.paths[new];
            for level in 0..factor.depth() {
                if old_path[level] != new_path[level] {
                    changes.push((self.fact.column_of(h, level), new_path[level].clone()));
                }
            }
        }
        changes.sort_by_key(|(c, _)| *c);
        let delta = RowDelta {
            row: self.row,
            changes,
        };
        self.row += 1;
        Some(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorization::HierarchyFactor;
    use reptile_relational::AttrId;

    fn paper_example() -> Factorization {
        let time = HierarchyFactor::from_paths(
            "time",
            vec![AttrId(0)],
            vec![vec![Value::str("t1")], vec![Value::str("t2")]],
        );
        let geo = HierarchyFactor::from_paths(
            "geo",
            vec![AttrId(1), AttrId(2)],
            vec![
                vec![Value::str("d1"), Value::str("v1")],
                vec![Value::str("d1"), Value::str("v2")],
                vec![Value::str("d2"), Value::str("v3")],
            ],
        );
        Factorization::new(vec![time, geo])
    }

    /// Reconstruct all rows from deltas and compare with direct
    /// materialisation — the defining property of the iterator.
    #[test]
    fn deltas_reconstruct_materialized_rows() {
        let f = paper_example();
        let expected = f.materialize_values();
        let mut current: Vec<Option<Value>> = vec![None; f.n_cols()];
        let mut seen = 0usize;
        for delta in RowIter::new(&f) {
            for (col, v) in &delta.changes {
                current[*col] = Some(v.clone());
            }
            let row: Vec<Value> = current.iter().map(|v| v.clone().unwrap()).collect();
            assert_eq!(row, expected[delta.row], "row {}", delta.row);
            seen += 1;
        }
        assert_eq!(seen, f.n_rows());
    }

    #[test]
    fn adjacent_rows_change_few_columns() {
        let f = paper_example();
        let deltas: Vec<RowDelta> = RowIter::new(&f).collect();
        // Row 1 differs from row 0 only in the village column (v1 -> v2).
        assert_eq!(deltas[1].changes, vec![(2, Value::str("v2"))]);
        assert_eq!(deltas[1].min_changed_column(), Some(2));
        // Row 2 changes district and village.
        assert_eq!(
            deltas[2].changes,
            vec![(1, Value::str("d2")), (2, Value::str("v3"))]
        );
        // Row 3 wraps the geo hierarchy and advances time.
        assert_eq!(
            deltas[3].changes,
            vec![
                (0, Value::str("t2")),
                (1, Value::str("d1")),
                (2, Value::str("v1"))
            ]
        );
    }

    #[test]
    fn single_hierarchy_iteration() {
        let single = Factorization::new(vec![HierarchyFactor::from_paths(
            "only",
            vec![AttrId(0)],
            vec![
                vec![Value::int(1)],
                vec![Value::int(2)],
                vec![Value::int(3)],
            ],
        )]);
        let deltas: Vec<RowDelta> = RowIter::new(&single).collect();
        assert_eq!(deltas.len(), 3);
        assert_eq!(deltas[0].changes, vec![(0, Value::int(1))]);
        assert_eq!(deltas[2].changes, vec![(0, Value::int(3))]);
    }

    #[test]
    fn empty_factorization_yields_nothing() {
        let empty = Factorization::new(vec![HierarchyFactor::from_paths(
            "empty",
            vec![AttrId(0)],
            Vec::new(),
        )]);
        assert_eq!(RowIter::new(&empty).count(), 0);
    }
}
