//! Drill-down maintenance of the decomposed aggregates (Section 4.4,
//! Appendix J, Figure 9).
//!
//! After a drill-down only one hierarchy changes (it gains one level), yet a
//! naive implementation recomputes every decomposed aggregate. Because
//! hierarchies are independent, the aggregates of the *other* hierarchies can
//! be carried over unchanged — only the global scaling factors (the leaf-count
//! products) change, and those are applied lazily by
//! [`DecomposedAggregates`]. A cross-invocation cache further removes the
//! cost of re-deriving aggregates for hierarchies that were computed by an
//! earlier Reptile invocation.
//!
//! Three maintenance modes are provided, matching the paper's Figure 9:
//! `Static` (recompute everything), `Dynamic` (recompute only the drilled
//! hierarchy, reuse the rest from the previous call), and `CachedDynamic`
//! (additionally reuse any previously computed hierarchy state).

use crate::aggregates::{DecomposedAggregates, HierarchyAggregates};
use crate::factorization::Factorization;
use std::collections::HashMap;

/// Maintenance strategy for successive drill-downs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrilldownMode {
    /// Recompute every hierarchy's aggregates on every call.
    Static,
    /// Reuse the hierarchies that did not change since the previous call.
    Dynamic,
    /// Reuse any hierarchy state ever computed in this session.
    CachedDynamic,
}

/// Statistics about the last [`DrilldownSession::aggregates`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Hierarchies whose aggregates were recomputed.
    pub recomputed: usize,
    /// Hierarchies whose aggregates were served from the session state/cache.
    pub reused: usize,
}

/// A stateful session that serves decomposed aggregates across successive
/// drill-down invocations.
#[derive(Debug)]
pub struct DrilldownSession {
    mode: DrilldownMode,
    /// Cache keyed by (hierarchy name, depth, leaf count). Leaf count guards
    /// against reusing stale state if the underlying provenance changed.
    cache: HashMap<(String, usize, usize), HierarchyAggregates>,
    /// Keys used by the previous invocation (the `Dynamic` reuse set).
    previous: Vec<(String, usize, usize)>,
    stats: SessionStats,
}

impl DrilldownSession {
    /// Create a session with the given maintenance mode.
    pub fn new(mode: DrilldownMode) -> Self {
        DrilldownSession {
            mode,
            cache: HashMap::new(),
            previous: Vec::new(),
            stats: SessionStats::default(),
        }
    }

    /// The maintenance mode.
    pub fn mode(&self) -> DrilldownMode {
        self.mode
    }

    /// Statistics of the most recent call.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    fn key_of(factor: &crate::factorization::HierarchyFactor) -> (String, usize, usize) {
        (factor.name.clone(), factor.depth(), factor.leaf_count())
    }

    /// Compute (or reuse) the decomposed aggregates for `fact`.
    pub fn aggregates(&mut self, fact: &Factorization) -> DecomposedAggregates {
        let mut stats = SessionStats::default();
        let mut parts = Vec::with_capacity(fact.hierarchies().len());
        let mut current_keys = Vec::with_capacity(fact.hierarchies().len());
        for factor in fact.hierarchies() {
            let key = Self::key_of(factor);
            let reusable = match self.mode {
                DrilldownMode::Static => false,
                DrilldownMode::Dynamic => {
                    self.previous.contains(&key) && self.cache.contains_key(&key)
                }
                DrilldownMode::CachedDynamic => self.cache.contains_key(&key),
            };
            let aggs = if reusable {
                stats.reused += 1;
                self.cache[&key].clone()
            } else {
                stats.recomputed += 1;
                let computed = HierarchyAggregates::compute(factor);
                self.cache.insert(key.clone(), computed.clone());
                computed
            };
            parts.push(aggs);
            current_keys.push(key);
        }
        if self.mode == DrilldownMode::Dynamic {
            // Dynamic only keeps state from the immediately preceding call.
            self.cache.retain(|k, _| current_keys.contains(k));
        }
        self.previous = current_keys;
        self.stats = stats;
        DecomposedAggregates::from_parts(fact, parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorization::HierarchyFactor;
    use reptile_relational::{AttrId, Value};

    fn hierarchy(name: &str, attr: usize, depth: usize, width: usize) -> HierarchyFactor {
        // Build a `depth`-level hierarchy where every level-l value has
        // `width` children.
        let mut paths = Vec::new();
        let total: usize = width.pow(depth as u32);
        for leaf in 0..total {
            let mut path = Vec::with_capacity(depth);
            let mut acc = leaf;
            let mut divisor = total;
            for level in 0..depth {
                divisor /= width;
                let idx = acc / divisor;
                acc %= divisor;
                path.push(Value::str(format!("{name}-{level}-{idx}")));
            }
            // encode the full prefix so FDs hold
            let mut full = Vec::with_capacity(depth);
            let mut prefix = String::new();
            for p in &path {
                prefix.push('/');
                prefix.push_str(&p.to_string());
                full.push(Value::str(prefix.clone()));
            }
            paths.push(full);
        }
        let attrs = (0..depth).map(|i| AttrId(attr + i)).collect();
        HierarchyFactor::from_paths(name, attrs, paths)
    }

    fn fact(depth_a: usize, depth_b: usize) -> Factorization {
        Factorization::new(vec![
            hierarchy("A", 0, depth_a, 2),
            hierarchy("B", 10, depth_b, 2),
        ])
    }

    #[test]
    fn static_mode_recomputes_everything() {
        let mut s = DrilldownSession::new(DrilldownMode::Static);
        s.aggregates(&fact(1, 1));
        assert_eq!(s.stats(), SessionStats { recomputed: 2, reused: 0 });
        s.aggregates(&fact(1, 1));
        assert_eq!(s.stats(), SessionStats { recomputed: 2, reused: 0 });
    }

    #[test]
    fn dynamic_mode_reuses_unchanged_hierarchies() {
        let mut s = DrilldownSession::new(DrilldownMode::Dynamic);
        s.aggregates(&fact(1, 1));
        assert_eq!(s.stats(), SessionStats { recomputed: 2, reused: 0 });
        // Drill down hierarchy B: only B is recomputed.
        s.aggregates(&fact(1, 2));
        assert_eq!(s.stats(), SessionStats { recomputed: 1, reused: 1 });
        // Going back to the earlier B depth is NOT cached in dynamic mode.
        s.aggregates(&fact(1, 1));
        assert_eq!(s.stats(), SessionStats { recomputed: 1, reused: 1 });
    }

    #[test]
    fn cached_mode_reuses_previous_invocations() {
        let mut s = DrilldownSession::new(DrilldownMode::CachedDynamic);
        s.aggregates(&fact(1, 1));
        s.aggregates(&fact(1, 2));
        assert_eq!(s.stats(), SessionStats { recomputed: 1, reused: 1 });
        // Revisit the first configuration: everything is served from cache.
        s.aggregates(&fact(1, 1));
        assert_eq!(s.stats(), SessionStats { recomputed: 0, reused: 2 });
        // A brand-new depth still requires work for that hierarchy only.
        s.aggregates(&fact(2, 1));
        assert_eq!(s.stats(), SessionStats { recomputed: 1, reused: 1 });
    }

    #[test]
    fn aggregates_are_identical_across_modes() {
        let f = fact(2, 2);
        let from_static = DrilldownSession::new(DrilldownMode::Static).aggregates(&f);
        let mut dynamic = DrilldownSession::new(DrilldownMode::CachedDynamic);
        dynamic.aggregates(&fact(2, 1));
        let from_dynamic = dynamic.aggregates(&f);
        for c in 0..f.n_cols() {
            assert_eq!(from_static.total(c), from_dynamic.total(c));
            assert_eq!(from_static.counts(c), from_dynamic.counts(c));
        }
        assert_eq!(from_static.grand_total(), from_dynamic.grand_total());
    }
}
