//! Drill-down maintenance of the decomposed aggregates (Section 4.4,
//! Appendix J, Figure 9).
//!
//! After a drill-down only one hierarchy changes (it gains one level), yet a
//! naive implementation recomputes every decomposed aggregate. Because
//! hierarchies are independent, the aggregates of the *other* hierarchies can
//! be carried over unchanged — only the global scaling factors (the leaf-count
//! products) change, and those are applied lazily by
//! [`DecomposedAggregates`]. A cross-invocation cache further removes the
//! cost of re-deriving aggregates for hierarchies that were computed by an
//! earlier Reptile invocation.
//!
//! Three maintenance modes are provided, matching the paper's Figure 9:
//! `Static` (recompute everything), `Dynamic` (recompute only the drilled
//! hierarchy, reuse the rest from the previous call), and `CachedDynamic`
//! (additionally reuse any previously computed hierarchy state).

use crate::aggregates::{DecomposedAggregates, HierarchyAggregates};
use crate::encoded::{
    EncodedAggregates, EncodedFactor, EncodedFactorization, EncodedHierarchyAggregates,
    FactorizationDelta, PathDelta,
};
use crate::factorization::{Factorization, HierarchyFactor};
use reptile_relational::Exec;
use reptile_relational::{Hierarchy, IngestBatch, Relation, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// Whole nanoseconds since `t0`, saturating (for the `u64` stats fields).
fn elapsed_ns(t0: Instant) -> u64 {
    t0.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Maintenance strategy for successive drill-downs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrilldownMode {
    /// Recompute every hierarchy's aggregates on every call.
    Static,
    /// Reuse the hierarchies that did not change since the previous call.
    Dynamic,
    /// Reuse any hierarchy state ever computed in this session.
    CachedDynamic,
}

/// Statistics about the last [`DrilldownSession::aggregates`] /
/// [`DrilldownSession::encoded`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Hierarchies whose aggregates were recomputed from scratch.
    pub recomputed: usize,
    /// Hierarchies whose aggregates were served from the session state/cache.
    pub reused: usize,
    /// Hierarchies whose encoded state was *delta-maintained* from a cached
    /// earlier snapshot instead of recomputed (see
    /// [`EncodedAggregates::apply_delta`]).
    pub delta_patched: usize,
    /// Nanoseconds the last call spent cold-encoding factors and computing
    /// their aggregates. Always 0 while stage timing is off (the counters
    /// above stay exact either way) — durations are integer nanoseconds so
    /// the struct stays `Copy + Eq`.
    pub encode_ns: u64,
    /// Nanoseconds the last call spent in delta-patch attempts (successful
    /// or abandoned). Always 0 while stage timing is off.
    pub delta_patch_ns: u64,
}

impl SessionStats {
    /// Add `other`'s counters and durations into `self` (used to maintain
    /// the session-lifetime running totals next to the per-call stats).
    fn absorb(&mut self, other: &SessionStats) {
        self.recomputed += other.recomputed;
        self.reused += other.reused;
        self.delta_patched += other.delta_patched;
        self.encode_ns += other.encode_ns;
        self.delta_patch_ns += other.delta_patch_ns;
    }
}

/// Cache key of one hierarchy's aggregate state: name, depth, leaf count,
/// a content fingerprint of the paths so that equally shaped factors over
/// different provenance (e.g. the villages of two different districts) never
/// alias, and the hierarchy's ingest epoch (see
/// [`DrilldownSession::bump_epoch`]) so that state cached before an ingest
/// can never be served after it — even on a fingerprint collision.
type FactorKey = (String, usize, usize, u64, u64);

/// Default bound on cached per-hierarchy aggregate states (long-lived
/// serving sessions touch many distinct provenances; the cache must not grow
/// with session lifetime).
pub const DEFAULT_SESSION_CAPACITY: usize = 256;

/// One hierarchy's cached *encoded* state: the dictionary-encoded factor and
/// its aggregates, `Arc`-shared so cache hits are pointer bumps instead of
/// the deep `HierarchyAggregates` clone the legacy path pays.
type EncodedEntry = (Arc<EncodedFactor>, Arc<EncodedHierarchyAggregates>);

/// A source of decomposed aggregates that the design builder can consult
/// instead of recomputing from scratch — implemented by [`DrilldownSession`]
/// so the engine threads its cross-invocation cache through design builds on
/// either backend.
pub trait AggregateSource {
    /// Serve (or compute) the legacy `Value`-keyed aggregates of `fact`.
    fn legacy_aggregates(&mut self, fact: &Factorization) -> DecomposedAggregates;
    /// Serve (or compute) the dictionary-encoded factorisation and
    /// aggregates of `fact`.
    fn encoded_aggregates(
        &mut self,
        fact: &Factorization,
    ) -> (EncodedFactorization, EncodedAggregates);
}

/// Per-hierarchy index of a relation's distinct full-depth paths with their
/// row counts — the bookkeeping that turns a row-level
/// [`IngestBatch`] into the per-hierarchy [`PathDelta`]s that
/// [`EncodedAggregates::apply_delta`] maintains encoded state from. A
/// hierarchy's factorised state depends only on its distinct path set, so a
/// batch that merely adds rows to existing paths (the common streaming
/// append) produces an empty delta for that hierarchy: nothing to patch,
/// nothing to invalidate. Shared by the engine's ingest and the streaming
/// benchmark so the delta detection they exercise is one implementation.
#[derive(Debug)]
pub struct PathCountIndex {
    /// `counts[h][path]` = number of rows carrying `path` on hierarchy `h`.
    counts: Vec<BTreeMap<Vec<Value>, usize>>,
}

impl PathCountIndex {
    /// Index `relation`'s rows over every hierarchy (one full scan).
    ///
    /// The scan runs on the relation's cached code columns: rows are
    /// counted under dense `u32` code tuples (no per-row `Value` clones)
    /// and each distinct path is decoded exactly once at the end — the same
    /// compile-then-decode shape as the view scan kernels.
    pub fn build(relation: &Relation, hierarchies: &[Hierarchy]) -> Self {
        let counts = hierarchies
            .iter()
            .map(|hierarchy| {
                let cols: Vec<_> = hierarchy
                    .levels
                    .iter()
                    .map(|a| relation.code_column(*a))
                    .collect();
                let mut coded: BTreeMap<Vec<u32>, usize> = BTreeMap::new();
                for row in 0..relation.len() {
                    let key: Vec<u32> = cols.iter().map(|c| c.code(row)).collect();
                    *coded.entry(key).or_insert(0) += 1;
                }
                coded
                    .into_iter()
                    .map(|(codes, n)| {
                        let path: Vec<Value> = codes
                            .iter()
                            .zip(&cols)
                            .map(|(code, col)| col.dict().value(*code).clone())
                            .collect();
                        (path, n)
                    })
                    .collect()
            })
            .collect();
        PathCountIndex { counts }
    }

    /// Fold a validated batch in and return, per hierarchy, the *net*
    /// distinct-path delta: paths whose row count crossed zero (in either
    /// direction) between the batch's start and end. A path inserted and
    /// deleted within one batch cancels out; paths in the returned
    /// [`PathDelta`]s are sorted and distinct, exactly the shape
    /// [`EncodedFactor::apply_delta`] requires. Hierarchies with no net
    /// change get `None` (their slot re-shares state by `Arc`).
    ///
    /// `hierarchies` must be the slice the index was built with.
    pub fn apply(&mut self, batch: &IngestBatch, hierarchies: &[Hierarchy]) -> FactorizationDelta {
        let mut delta = FactorizationDelta::none(hierarchies.len());
        for (h, hierarchy) in hierarchies.iter().enumerate() {
            let counts = &mut self.counts[h];
            let path_of = |row: &[Value]| -> Vec<Value> {
                hierarchy
                    .levels
                    .iter()
                    .map(|a| row[a.index()].clone())
                    .collect()
            };
            // Row counts of every path the batch touches, as of batch start.
            let mut before: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
            for row in batch.inserts() {
                let path = path_of(row);
                before
                    .entry(path.clone())
                    .or_insert_with(|| counts.get(&path).copied().unwrap_or(0));
                *counts.entry(path).or_insert(0) += 1;
            }
            for row in batch.deletes() {
                let path = path_of(row);
                before
                    .entry(path.clone())
                    .or_insert_with(|| counts.get(&path).copied().unwrap_or(0));
                if let Some(n) = counts.get_mut(&path) {
                    *n = n.saturating_sub(1);
                    if *n == 0 {
                        counts.remove(&path);
                    }
                }
            }
            let mut added = Vec::new();
            let mut removed = Vec::new();
            for (path, before) in before {
                let after = counts.get(&path).copied().unwrap_or(0);
                match (before == 0, after == 0) {
                    (true, false) => added.push(path),
                    (false, true) => removed.push(path),
                    _ => {}
                }
            }
            if !added.is_empty() || !removed.is_empty() {
                delta = delta.with(h, PathDelta { added, removed });
            }
        }
        delta
    }
}

/// A stateful session that serves decomposed aggregates across successive
/// drill-down invocations.
#[derive(Debug)]
pub struct DrilldownSession {
    mode: DrilldownMode,
    capacity: usize,
    clock: u64,
    cache: HashMap<FactorKey, (HierarchyAggregates, u64)>,
    /// Keys used by the previous invocation (the `Dynamic` reuse set).
    previous: Vec<FactorKey>,
    /// Encoded-backend cache: one encoded factor + aggregates per key.
    encoded_cache: HashMap<FactorKey, (EncodedEntry, u64)>,
    /// Keys used by the previous *encoded* invocation.
    previous_encoded: Vec<FactorKey>,
    /// Per-hierarchy ingest epoch, folded into every [`FactorKey`]. Bumped
    /// by the engine when an ingest changes a hierarchy's distinct path set;
    /// entries cached under the old epoch become unreachable as exact
    /// answers but stay usable as delta bases.
    epochs: HashMap<String, u64>,
    /// Most recently inserted encoded entry per `(hierarchy name, depth)` —
    /// the candidate base for delta patching on a miss.
    delta_bases: HashMap<(String, usize), FactorKey>,
    /// Execution context for cold factor builds and delta patches —
    /// inline, shard pool, exact shards, or worker processes. Serial by
    /// default; every context is bit-identical, so it never affects cache
    /// contents.
    exec: Exec,
    /// Per-session stage-timing switch (the engine mirrors its `ObsConfig`
    /// here). Timing also turns on when the process-wide
    /// [`reptile_obs::enabled`] flag is set; either way results and cache
    /// contents are bit-identical — only [`SessionStats`] durations change.
    profile: bool,
    stats: SessionStats,
    cumulative: SessionStats,
}

impl DrilldownSession {
    /// Create a session with the given maintenance mode and the default
    /// cache bound.
    pub fn new(mode: DrilldownMode) -> Self {
        Self::with_capacity(mode, DEFAULT_SESSION_CAPACITY)
    }

    /// Create a session holding at most `capacity` cached hierarchy states
    /// *in total across both backends* (least-recently-used beyond that;
    /// minimum 1).
    pub fn with_capacity(mode: DrilldownMode, capacity: usize) -> Self {
        DrilldownSession {
            mode,
            capacity: capacity.max(1),
            clock: 0,
            cache: HashMap::new(),
            previous: Vec::new(),
            encoded_cache: HashMap::new(),
            previous_encoded: Vec::new(),
            epochs: HashMap::new(),
            delta_bases: HashMap::new(),
            exec: Exec::Serial,
            profile: false,
            stats: SessionStats::default(),
            cumulative: SessionStats::default(),
        }
    }

    /// Set the execution context for cold encoded factor builds and delta
    /// patches (builder style). Every context is bit-identical to serial,
    /// so this changes *where* the work runs — never cached contents.
    pub fn with_exec(mut self, exec: Exec) -> Self {
        self.exec = exec;
        self
    }

    /// Update the execution context on a live session (e.g. when the
    /// engine's configuration is replaced).
    pub fn set_exec(&mut self, exec: Exec) {
        self.exec = exec;
    }

    /// The configured execution context.
    pub fn exec(&self) -> &Exec {
        &self.exec
    }

    /// Turn per-call stage timing on or off for this session (the engine
    /// mirrors its `ObsConfig` here). Off by default; when off, the
    /// [`SessionStats`] duration fields stay 0 unless the process-wide
    /// [`reptile_obs::enabled`] flag is set.
    pub fn set_profile(&mut self, profile: bool) {
        self.profile = profile;
    }

    /// Whether this call should read clocks (session switch or global flag).
    fn timing_on(&self) -> bool {
        self.profile || reptile_obs::enabled()
    }

    /// The maintenance mode.
    pub fn mode(&self) -> DrilldownMode {
        self.mode
    }

    /// The cache bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached hierarchy states (legacy plus encoded).
    pub fn len(&self) -> usize {
        self.cache.len() + self.encoded_cache.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty() && self.encoded_cache.is_empty()
    }

    /// Statistics of the most recent call.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Running totals over the whole session: every counter and duration
    /// of every [`DrilldownSession::aggregates`] /
    /// [`DrilldownSession::encoded`] call since creation, summed.
    pub fn cumulative_stats(&self) -> SessionStats {
        self.cumulative
    }

    /// The current ingest epoch of `hierarchy` (0 until the first
    /// [`DrilldownSession::bump_epoch`]).
    pub fn epoch(&self, hierarchy: &str) -> u64 {
        self.epochs.get(hierarchy).copied().unwrap_or(0)
    }

    /// Advance `hierarchy`'s ingest epoch, returning the new value. Every
    /// cache key folds the epoch in, so state cached for this hierarchy
    /// before the bump can no longer be served as an exact answer — a stale
    /// factor can never outlive an ingest, even if the post-ingest path set
    /// happens to collide with the old content fingerprint. The stale
    /// encoded entries stay in the cache (until evicted) as *delta bases*:
    /// the next request for this hierarchy diffs its paths against the
    /// latest cached snapshot and patches it forward instead of recomputing,
    /// when the diff is small.
    pub fn bump_epoch(&mut self, hierarchy: &str) -> u64 {
        let epoch = self.epochs.entry(hierarchy.to_string()).or_insert(0);
        *epoch += 1;
        *epoch
    }

    fn key_of(&self, factor: &HierarchyFactor) -> FactorKey {
        (
            factor.name.clone(),
            factor.depth(),
            factor.leaf_count(),
            factor.content_fingerprint(),
            self.epoch(&factor.name),
        )
    }

    /// Make room for one insertion: while the *total* number of cached
    /// states (legacy + encoded) is at the capacity, evict the globally
    /// least-recently-used entry — but never one of the current
    /// invocation's own hierarchies.
    fn evict_for_insert(&mut self, current_keys: &[FactorKey]) {
        while self.cache.len() + self.encoded_cache.len() >= self.capacity {
            let legacy = self
                .cache
                .iter()
                .filter(|(k, _)| !current_keys.contains(*k))
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, (_, used))| (k.clone(), *used));
            let encoded = self
                .encoded_cache
                .iter()
                .filter(|(k, _)| !current_keys.contains(*k))
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, (_, used))| (k.clone(), *used));
            match (legacy, encoded) {
                (Some((lk, lu)), Some((_, eu))) if lu <= eu => {
                    self.cache.remove(&lk);
                }
                (Some((lk, _)), None) => {
                    self.cache.remove(&lk);
                }
                (_, Some((ek, _))) => {
                    self.encoded_cache.remove(&ek);
                }
                (None, None) => break,
            }
        }
    }

    /// Try to serve `factor`'s encoded state by delta-maintaining the most
    /// recently cached snapshot of the same hierarchy (same name, depth and
    /// level attributes). The candidate's actual paths are diffed against
    /// `factor.paths` — correctness never rests on fingerprints or epochs
    /// here, only on the diff — and the patch is taken when the diff is
    /// small (at most half the base's paths); larger diffs fall back to a
    /// cold re-encode, which touches every path anyway.
    ///
    /// An *empty* diff is a verified content match: the cached snapshot is
    /// returned as-is (two `Arc` bumps), which re-validates entries whose
    /// key only changed because an ingest bumped the hierarchy's epoch
    /// without actually changing this factor's paths (e.g. a depth-1 prefix
    /// untouched by a new leaf under an existing parent).
    fn try_delta_patch(&self, factor: &HierarchyFactor) -> Option<EncodedEntry> {
        let base_key = self
            .delta_bases
            .get(&(factor.name.clone(), factor.depth()))?;
        let ((base_factor, base_aggs), _) = self.encoded_cache.get(base_key)?;
        if base_factor.attrs != factor.attrs {
            return None;
        }
        let delta = PathDelta::between(base_factor, &factor.paths);
        if delta.is_empty() {
            return Some((base_factor.clone(), base_aggs.clone()));
        }
        if base_factor.leaf_count() == 0 || delta.len() > base_factor.leaf_count() / 2 {
            return None;
        }
        let next = Arc::new(base_factor.apply_delta(&delta));
        debug_assert_eq!(next.leaf_count(), factor.leaf_count());
        let aggs = Arc::new(base_aggs.apply_delta(&next, &delta, &self.exec));
        Some((next, aggs))
    }

    /// Compute (or reuse) the decomposed aggregates for `fact`.
    pub fn aggregates(&mut self, fact: &Factorization) -> DecomposedAggregates {
        let timing = self.timing_on();
        let mut stats = SessionStats::default();
        let mut parts = Vec::with_capacity(fact.hierarchies().len());
        let mut current_keys = Vec::with_capacity(fact.hierarchies().len());
        for factor in fact.hierarchies() {
            let key = self.key_of(factor);
            let reusable = match self.mode {
                DrilldownMode::Static => false,
                DrilldownMode::Dynamic => {
                    self.previous.contains(&key) && self.cache.contains_key(&key)
                }
                DrilldownMode::CachedDynamic => self.cache.contains_key(&key),
            };
            self.clock += 1;
            let aggs = if reusable {
                stats.reused += 1;
                let entry = self.cache.get_mut(&key).expect("checked above");
                entry.1 = self.clock;
                entry.0.clone()
            } else {
                stats.recomputed += 1;
                let t0 = timing.then(Instant::now);
                let computed = HierarchyAggregates::compute(factor);
                if let Some(t0) = t0 {
                    stats.encode_ns += elapsed_ns(t0);
                }
                if !self.cache.contains_key(&key) {
                    self.evict_for_insert(&current_keys);
                }
                self.cache
                    .insert(key.clone(), (computed.clone(), self.clock));
                computed
            };
            parts.push(aggs);
            current_keys.push(key);
        }
        if self.mode == DrilldownMode::Dynamic {
            // Dynamic only keeps state from the immediately preceding call.
            self.cache.retain(|k, _| current_keys.contains(k));
        }
        self.previous = current_keys;
        self.cumulative.absorb(&stats);
        self.stats = stats;
        DecomposedAggregates::from_parts(fact, parts)
    }

    /// Compute (or reuse) the dictionary-encoded factorisation and decomposed
    /// aggregates for `fact`. The cached per-hierarchy state is the encoded
    /// factor *plus* its aggregates, both behind `Arc`s: a hit skips the
    /// encoding pass as well as the aggregate batch, and costs two pointer
    /// clones instead of the legacy path's deep table copy.
    pub fn encoded(&mut self, fact: &Factorization) -> (EncodedFactorization, EncodedAggregates) {
        let timing = self.timing_on();
        let mut stats = SessionStats::default();
        let mut factors = Vec::with_capacity(fact.hierarchies().len());
        let mut parts = Vec::with_capacity(fact.hierarchies().len());
        let mut current_keys = Vec::with_capacity(fact.hierarchies().len());
        for factor in fact.hierarchies() {
            let key = self.key_of(factor);
            let reusable = match self.mode {
                DrilldownMode::Static => false,
                DrilldownMode::Dynamic => {
                    self.previous_encoded.contains(&key) && self.encoded_cache.contains_key(&key)
                }
                DrilldownMode::CachedDynamic => self.encoded_cache.contains_key(&key),
            };
            self.clock += 1;
            let (enc, aggs) = if reusable {
                stats.reused += 1;
                let entry = self.encoded_cache.get_mut(&key).expect("checked above");
                entry.1 = self.clock;
                entry.0.clone()
            } else {
                // Miss: before paying a cold re-encode, try to *maintain* the
                // latest cached snapshot of this hierarchy forward by a path
                // delta (possibly across an epoch bump after an ingest).
                let patched = if self.mode == DrilldownMode::Static {
                    None
                } else {
                    let t0 = timing.then(Instant::now);
                    let patched = self.try_delta_patch(factor);
                    if let Some(t0) = t0 {
                        stats.delta_patch_ns += elapsed_ns(t0);
                    }
                    patched
                };
                let entry = match patched {
                    Some(entry) => {
                        stats.delta_patched += 1;
                        entry
                    }
                    None => {
                        stats.recomputed += 1;
                        let t0 = timing.then(Instant::now);
                        let enc = Arc::new(EncodedFactor::encode(factor, &self.exec));
                        let aggs = Arc::new(EncodedHierarchyAggregates::compute(&enc, &self.exec));
                        if let Some(t0) = t0 {
                            stats.encode_ns += elapsed_ns(t0);
                        }
                        (enc, aggs)
                    }
                };
                if !self.encoded_cache.contains_key(&key) {
                    self.evict_for_insert(&current_keys);
                }
                self.encoded_cache
                    .insert(key.clone(), (entry.clone(), self.clock));
                self.delta_bases
                    .insert((factor.name.clone(), factor.depth()), key.clone());
                entry
            };
            factors.push(enc);
            parts.push(aggs);
            current_keys.push(key);
        }
        if self.mode == DrilldownMode::Dynamic {
            self.encoded_cache.retain(|k, _| current_keys.contains(k));
        }
        self.previous_encoded = current_keys;
        self.cumulative.absorb(&stats);
        self.stats = stats;
        let encoded_fact = EncodedFactorization::new(factors);
        let aggregates = EncodedAggregates::from_parts(&encoded_fact, parts);
        (encoded_fact, aggregates)
    }
}

impl AggregateSource for DrilldownSession {
    fn legacy_aggregates(&mut self, fact: &Factorization) -> DecomposedAggregates {
        self.aggregates(fact)
    }

    fn encoded_aggregates(
        &mut self,
        fact: &Factorization,
    ) -> (EncodedFactorization, EncodedAggregates) {
        self.encoded(fact)
    }
}

/// A stateless [`AggregateSource`] that recomputes everything on every call —
/// what a design build does when no drill-down session is threaded through.
/// Carries an execution context so stand-alone builds can still fan their
/// encoded computation out (bit-identically; serial by default).
#[derive(Debug, Clone, Default)]
pub struct FreshAggregates {
    /// Execution context for the encoded factor build and aggregate batch.
    pub exec: Exec,
}

impl FreshAggregates {
    /// A fresh source running its encoded computation on `exec`.
    pub fn with_exec(exec: Exec) -> Self {
        FreshAggregates { exec }
    }
}

impl AggregateSource for FreshAggregates {
    fn legacy_aggregates(&mut self, fact: &Factorization) -> DecomposedAggregates {
        DecomposedAggregates::compute(fact)
    }

    fn encoded_aggregates(
        &mut self,
        fact: &Factorization,
    ) -> (EncodedFactorization, EncodedAggregates) {
        let factors = fact
            .hierarchies()
            .iter()
            .map(|h| Arc::new(EncodedFactor::encode(h, &self.exec)))
            .collect();
        let enc = EncodedFactorization::new(factors);
        let aggs = EncodedAggregates::compute(&enc, &self.exec);
        (enc, aggs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorization::HierarchyFactor;
    use reptile_relational::{AttrId, Value};

    fn hierarchy(name: &str, attr: usize, depth: usize, width: usize) -> HierarchyFactor {
        // Build a `depth`-level hierarchy where every level-l value has
        // `width` children.
        let mut paths = Vec::new();
        let total: usize = width.pow(depth as u32);
        for leaf in 0..total {
            let mut path = Vec::with_capacity(depth);
            let mut acc = leaf;
            let mut divisor = total;
            for level in 0..depth {
                divisor /= width;
                let idx = acc / divisor;
                acc %= divisor;
                path.push(Value::str(format!("{name}-{level}-{idx}")));
            }
            // encode the full prefix so FDs hold
            let mut full = Vec::with_capacity(depth);
            let mut prefix = String::new();
            for p in &path {
                prefix.push('/');
                prefix.push_str(&p.to_string());
                full.push(Value::str(prefix.clone()));
            }
            paths.push(full);
        }
        let attrs = (0..depth).map(|i| AttrId(attr + i)).collect();
        HierarchyFactor::from_paths(name, attrs, paths)
    }

    fn fact(depth_a: usize, depth_b: usize) -> Factorization {
        Factorization::new(vec![
            hierarchy("A", 0, depth_a, 2),
            hierarchy("B", 10, depth_b, 2),
        ])
    }

    #[test]
    fn static_mode_recomputes_everything() {
        let mut s = DrilldownSession::new(DrilldownMode::Static);
        s.aggregates(&fact(1, 1));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 2,
                reused: 0,
                delta_patched: 0,

                ..SessionStats::default()
            }
        );
        s.aggregates(&fact(1, 1));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 2,
                reused: 0,
                delta_patched: 0,

                ..SessionStats::default()
            }
        );
    }

    #[test]
    fn dynamic_mode_reuses_unchanged_hierarchies() {
        let mut s = DrilldownSession::new(DrilldownMode::Dynamic);
        s.aggregates(&fact(1, 1));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 2,
                reused: 0,
                delta_patched: 0,

                ..SessionStats::default()
            }
        );
        // Drill down hierarchy B: only B is recomputed.
        s.aggregates(&fact(1, 2));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 1,
                reused: 1,
                delta_patched: 0,

                ..SessionStats::default()
            }
        );
        // Going back to the earlier B depth is NOT cached in dynamic mode.
        s.aggregates(&fact(1, 1));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 1,
                reused: 1,
                delta_patched: 0,

                ..SessionStats::default()
            }
        );
    }

    #[test]
    fn cached_mode_reuses_previous_invocations() {
        let mut s = DrilldownSession::new(DrilldownMode::CachedDynamic);
        s.aggregates(&fact(1, 1));
        s.aggregates(&fact(1, 2));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 1,
                reused: 1,
                delta_patched: 0,

                ..SessionStats::default()
            }
        );
        // Revisit the first configuration: everything is served from cache.
        s.aggregates(&fact(1, 1));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 0,
                reused: 2,
                delta_patched: 0,

                ..SessionStats::default()
            }
        );
        // A brand-new depth still requires work for that hierarchy only.
        s.aggregates(&fact(2, 1));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 1,
                reused: 1,
                delta_patched: 0,

                ..SessionStats::default()
            }
        );
    }

    #[test]
    fn cache_is_bounded_and_evicts_least_recently_used() {
        let mut s = DrilldownSession::with_capacity(DrilldownMode::CachedDynamic, 2);
        assert_eq!(s.capacity(), 2);
        let a = fact(1, 1); // hierarchies A(depth 1), B(depth 1)
        s.aggregates(&a);
        assert_eq!(s.len(), 2);
        // A new A-depth fills the cache past capacity: the oldest state that
        // is not part of the current invocation (A depth 1) is evicted while
        // B (just reused this call) survives.
        s.aggregates(&fact(2, 1));
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 1,
                reused: 1,
                delta_patched: 0,

                ..SessionStats::default()
            }
        );
        // A depth 1 was evicted: recomputed again; B still cached.
        s.aggregates(&a);
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 1,
                reused: 1,
                delta_patched: 0,

                ..SessionStats::default()
            }
        );
    }

    #[test]
    fn equally_shaped_factors_with_different_content_do_not_alias() {
        // Two factors with the same name/depth/leaf-count but different paths
        // (think: the villages of district D1 vs district D2) must not reuse
        // each other's aggregates.
        let a = hierarchy("H", 0, 1, 2);
        let mut other_paths = a.paths.clone();
        for p in &mut other_paths {
            *p = vec![Value::str(format!("other-{}", p[0]))];
        }
        let b = HierarchyFactor::from_paths("H", a.attrs.clone(), other_paths);
        assert_eq!(a.depth(), b.depth());
        assert_eq!(a.leaf_count(), b.leaf_count());
        let mut s = DrilldownSession::new(DrilldownMode::CachedDynamic);
        s.aggregates(&Factorization::new(vec![a.clone()]));
        s.aggregates(&Factorization::new(vec![b]));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 1,
                reused: 0,
                delta_patched: 0,

                ..SessionStats::default()
            }
        );
        // The original factor is still served from cache.
        s.aggregates(&Factorization::new(vec![a]));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 0,
                reused: 1,
                delta_patched: 0,

                ..SessionStats::default()
            }
        );
    }

    #[test]
    fn encoded_mode_reuses_like_legacy_mode() {
        let mut s = DrilldownSession::new(DrilldownMode::CachedDynamic);
        s.encoded(&fact(1, 1));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 2,
                reused: 0,
                delta_patched: 0,

                ..SessionStats::default()
            }
        );
        s.encoded(&fact(1, 2));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 1,
                reused: 1,
                delta_patched: 0,

                ..SessionStats::default()
            }
        );
        // Revisit the first configuration: everything served from cache.
        s.encoded(&fact(1, 1));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 0,
                reused: 2,
                delta_patched: 0,

                ..SessionStats::default()
            }
        );
        // The encoded and legacy caches are independent: a legacy call over
        // the same shape still has to compute its own state.
        s.aggregates(&fact(1, 1));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 2,
                reused: 0,
                delta_patched: 0,

                ..SessionStats::default()
            }
        );
    }

    #[test]
    fn capacity_bounds_both_backends_together() {
        let mut s = DrilldownSession::with_capacity(DrilldownMode::CachedDynamic, 3);
        s.aggregates(&fact(1, 1)); // 2 legacy states
        s.encoded(&fact(1, 1)); // +2 encoded states -> one eviction
        assert!(s.len() <= s.capacity(), "{} > {}", s.len(), s.capacity());
        s.encoded(&fact(2, 2));
        s.aggregates(&fact(2, 1));
        assert!(s.len() <= s.capacity(), "{} > {}", s.len(), s.capacity());
    }

    #[test]
    fn encoded_session_matches_fresh_computation() {
        use crate::encoded::{EncodedAggregates, EncodedFactorization};
        let f = fact(2, 2);
        let mut s = DrilldownSession::new(DrilldownMode::CachedDynamic);
        s.encoded(&fact(2, 1));
        let (enc, aggs) = s.encoded(&f);
        let fresh_fact = EncodedFactorization::encode(&f);
        let fresh = EncodedAggregates::compute(&fresh_fact, &Exec::Serial);
        assert_eq!(enc.n_rows(), fresh_fact.n_rows());
        for c in 0..f.n_cols() {
            assert_eq!(aggs.total(c), fresh.total(c));
            assert_eq!(aggs.counts_raw(c).0, fresh.counts_raw(c).0);
            assert_eq!(aggs.block_runs_raw(c).0, fresh.block_runs_raw(c).0);
        }
        assert_eq!(aggs.grand_total(), fresh.grand_total());
    }

    #[test]
    fn epoch_bump_unreaches_cached_state_and_verifies_by_diff() {
        let mut s = DrilldownSession::new(DrilldownMode::CachedDynamic);
        let f = fact(2, 2);
        s.encoded(&f);
        s.encoded(&f);
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 0,
                reused: 2,
                delta_patched: 0,

                ..SessionStats::default()
            }
        );
        // After an ingest epoch bump the old key can no longer hit; the
        // unchanged content is re-validated by an (empty) path diff instead
        // of trusted via fingerprint.
        assert_eq!(s.epoch("A"), 0);
        assert_eq!(s.bump_epoch("A"), 1);
        s.encoded(&f);
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 0,
                reused: 1,
                delta_patched: 1,

                ..SessionStats::default()
            }
        );
        // ... and the re-validated entry hits directly on the next call.
        s.encoded(&f);
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 0,
                reused: 2,
                delta_patched: 0,

                ..SessionStats::default()
            }
        );
    }

    #[test]
    fn delta_patch_maintains_changed_hierarchy_exactly() {
        let mut s = DrilldownSession::new(DrilldownMode::CachedDynamic);
        let a = hierarchy("A", 0, 2, 2);
        let b = hierarchy("B", 10, 1, 2);
        s.encoded(&Factorization::new(vec![a.clone(), b.clone()]));
        // A streaming ingest adds one new leaf path (with unseen values) and
        // removes one existing path from A, then bumps A's epoch.
        let mut paths = a.paths.clone();
        paths.push(vec![Value::str("/zz"), Value::str("/zz/0")]);
        paths.remove(0);
        let a2 = HierarchyFactor::from_paths("A", a.attrs.clone(), paths);
        s.bump_epoch("A");
        let (enc, aggs) = s.encoded(&Factorization::new(vec![a2.clone(), b.clone()]));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 0,
                reused: 1,
                delta_patched: 1,

                ..SessionStats::default()
            }
        );
        // The patched state agrees with a cold computation, decoded per value
        // (the patched dictionary keeps stable codes plus an appended tail).
        let fresh_fact =
            crate::encoded::EncodedFactorization::encode(&Factorization::new(vec![a2, b]));
        let fresh = EncodedAggregates::compute(&fresh_fact, &Exec::Serial);
        assert_eq!(aggs.grand_total(), fresh.grand_total());
        for c in 0..enc.n_cols() {
            assert_eq!(aggs.total(c), fresh.total(c));
            let (desc, scale) = aggs.counts_raw(c);
            for (code, count) in desc.iter().enumerate() {
                let value = enc.dict(c).value(code as u32);
                let cold = fresh_fact
                    .dict(c)
                    .code_of(value)
                    .map(|fc| fresh.counts_raw(c).0[fc as usize] * fresh.counts_raw(c).1)
                    .unwrap_or(0.0);
                assert_eq!(count * scale, cold, "col {c} value {value}");
            }
        }
        // Pre-existing values kept their codes (stable-code extension).
        let base = crate::encoded::EncodedFactor::encode(&a, &Exec::Serial);
        for (code, value) in base.levels[0].dict.iter() {
            assert_eq!(enc.factors()[0].levels[0].dict.code_of(value), Some(code));
        }
    }

    #[test]
    fn aggregates_are_identical_across_modes() {
        let f = fact(2, 2);
        let from_static = DrilldownSession::new(DrilldownMode::Static).aggregates(&f);
        let mut dynamic = DrilldownSession::new(DrilldownMode::CachedDynamic);
        dynamic.aggregates(&fact(2, 1));
        let from_dynamic = dynamic.aggregates(&f);
        for c in 0..f.n_cols() {
            assert_eq!(from_static.total(c), from_dynamic.total(c));
            assert_eq!(from_static.counts(c), from_dynamic.counts(c));
        }
        assert_eq!(from_static.grand_total(), from_dynamic.grand_total());
    }
}
