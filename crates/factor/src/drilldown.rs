//! Drill-down maintenance of the decomposed aggregates (Section 4.4,
//! Appendix J, Figure 9).
//!
//! After a drill-down only one hierarchy changes (it gains one level), yet a
//! naive implementation recomputes every decomposed aggregate. Because
//! hierarchies are independent, the aggregates of the *other* hierarchies can
//! be carried over unchanged — only the global scaling factors (the leaf-count
//! products) change, and those are applied lazily by
//! [`DecomposedAggregates`]. A cross-invocation cache further removes the
//! cost of re-deriving aggregates for hierarchies that were computed by an
//! earlier Reptile invocation.
//!
//! Three maintenance modes are provided, matching the paper's Figure 9:
//! `Static` (recompute everything), `Dynamic` (recompute only the drilled
//! hierarchy, reuse the rest from the previous call), and `CachedDynamic`
//! (additionally reuse any previously computed hierarchy state).

use crate::aggregates::{DecomposedAggregates, HierarchyAggregates};
use crate::factorization::Factorization;
use std::collections::HashMap;

/// Maintenance strategy for successive drill-downs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrilldownMode {
    /// Recompute every hierarchy's aggregates on every call.
    Static,
    /// Reuse the hierarchies that did not change since the previous call.
    Dynamic,
    /// Reuse any hierarchy state ever computed in this session.
    CachedDynamic,
}

/// Statistics about the last [`DrilldownSession::aggregates`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Hierarchies whose aggregates were recomputed.
    pub recomputed: usize,
    /// Hierarchies whose aggregates were served from the session state/cache.
    pub reused: usize,
}

/// Cache key of one hierarchy's aggregate state: name, depth, leaf count,
/// plus a content fingerprint of the paths so that equally shaped factors
/// over different provenance (e.g. the villages of two different districts)
/// never alias.
type FactorKey = (String, usize, usize, u64);

/// Default bound on cached per-hierarchy aggregate states (long-lived
/// serving sessions touch many distinct provenances; the cache must not grow
/// with session lifetime).
pub const DEFAULT_SESSION_CAPACITY: usize = 256;

/// A stateful session that serves decomposed aggregates across successive
/// drill-down invocations.
#[derive(Debug)]
pub struct DrilldownSession {
    mode: DrilldownMode,
    capacity: usize,
    clock: u64,
    cache: HashMap<FactorKey, (HierarchyAggregates, u64)>,
    /// Keys used by the previous invocation (the `Dynamic` reuse set).
    previous: Vec<FactorKey>,
    stats: SessionStats,
}

impl DrilldownSession {
    /// Create a session with the given maintenance mode and the default
    /// cache bound.
    pub fn new(mode: DrilldownMode) -> Self {
        Self::with_capacity(mode, DEFAULT_SESSION_CAPACITY)
    }

    /// Create a session holding at most `capacity` cached hierarchy states
    /// (least-recently-used beyond that; minimum 1).
    pub fn with_capacity(mode: DrilldownMode, capacity: usize) -> Self {
        DrilldownSession {
            mode,
            capacity: capacity.max(1),
            clock: 0,
            cache: HashMap::new(),
            previous: Vec::new(),
            stats: SessionStats::default(),
        }
    }

    /// The maintenance mode.
    pub fn mode(&self) -> DrilldownMode {
        self.mode
    }

    /// The cache bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached hierarchy states.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Statistics of the most recent call.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    fn key_of(factor: &crate::factorization::HierarchyFactor) -> FactorKey {
        (
            factor.name.clone(),
            factor.depth(),
            factor.leaf_count(),
            factor.content_fingerprint(),
        )
    }

    /// Compute (or reuse) the decomposed aggregates for `fact`.
    pub fn aggregates(&mut self, fact: &Factorization) -> DecomposedAggregates {
        let mut stats = SessionStats::default();
        let mut parts = Vec::with_capacity(fact.hierarchies().len());
        let mut current_keys = Vec::with_capacity(fact.hierarchies().len());
        for factor in fact.hierarchies() {
            let key = Self::key_of(factor);
            let reusable = match self.mode {
                DrilldownMode::Static => false,
                DrilldownMode::Dynamic => {
                    self.previous.contains(&key) && self.cache.contains_key(&key)
                }
                DrilldownMode::CachedDynamic => self.cache.contains_key(&key),
            };
            self.clock += 1;
            let aggs = if reusable {
                stats.reused += 1;
                let entry = self.cache.get_mut(&key).expect("checked above");
                entry.1 = self.clock;
                entry.0.clone()
            } else {
                stats.recomputed += 1;
                let computed = HierarchyAggregates::compute(factor);
                if !self.cache.contains_key(&key) && self.cache.len() >= self.capacity {
                    // Evict the least-recently-used state, but never one of
                    // this invocation's own hierarchies.
                    if let Some(oldest) = self
                        .cache
                        .iter()
                        .filter(|(k, _)| !current_keys.contains(*k))
                        .min_by_key(|(_, (_, used))| *used)
                        .map(|(k, _)| k.clone())
                    {
                        self.cache.remove(&oldest);
                    }
                }
                self.cache
                    .insert(key.clone(), (computed.clone(), self.clock));
                computed
            };
            parts.push(aggs);
            current_keys.push(key);
        }
        if self.mode == DrilldownMode::Dynamic {
            // Dynamic only keeps state from the immediately preceding call.
            self.cache.retain(|k, _| current_keys.contains(k));
        }
        self.previous = current_keys;
        self.stats = stats;
        DecomposedAggregates::from_parts(fact, parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorization::HierarchyFactor;
    use reptile_relational::{AttrId, Value};

    fn hierarchy(name: &str, attr: usize, depth: usize, width: usize) -> HierarchyFactor {
        // Build a `depth`-level hierarchy where every level-l value has
        // `width` children.
        let mut paths = Vec::new();
        let total: usize = width.pow(depth as u32);
        for leaf in 0..total {
            let mut path = Vec::with_capacity(depth);
            let mut acc = leaf;
            let mut divisor = total;
            for level in 0..depth {
                divisor /= width;
                let idx = acc / divisor;
                acc %= divisor;
                path.push(Value::str(format!("{name}-{level}-{idx}")));
            }
            // encode the full prefix so FDs hold
            let mut full = Vec::with_capacity(depth);
            let mut prefix = String::new();
            for p in &path {
                prefix.push('/');
                prefix.push_str(&p.to_string());
                full.push(Value::str(prefix.clone()));
            }
            paths.push(full);
        }
        let attrs = (0..depth).map(|i| AttrId(attr + i)).collect();
        HierarchyFactor::from_paths(name, attrs, paths)
    }

    fn fact(depth_a: usize, depth_b: usize) -> Factorization {
        Factorization::new(vec![
            hierarchy("A", 0, depth_a, 2),
            hierarchy("B", 10, depth_b, 2),
        ])
    }

    #[test]
    fn static_mode_recomputes_everything() {
        let mut s = DrilldownSession::new(DrilldownMode::Static);
        s.aggregates(&fact(1, 1));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 2,
                reused: 0
            }
        );
        s.aggregates(&fact(1, 1));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 2,
                reused: 0
            }
        );
    }

    #[test]
    fn dynamic_mode_reuses_unchanged_hierarchies() {
        let mut s = DrilldownSession::new(DrilldownMode::Dynamic);
        s.aggregates(&fact(1, 1));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 2,
                reused: 0
            }
        );
        // Drill down hierarchy B: only B is recomputed.
        s.aggregates(&fact(1, 2));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 1,
                reused: 1
            }
        );
        // Going back to the earlier B depth is NOT cached in dynamic mode.
        s.aggregates(&fact(1, 1));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 1,
                reused: 1
            }
        );
    }

    #[test]
    fn cached_mode_reuses_previous_invocations() {
        let mut s = DrilldownSession::new(DrilldownMode::CachedDynamic);
        s.aggregates(&fact(1, 1));
        s.aggregates(&fact(1, 2));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 1,
                reused: 1
            }
        );
        // Revisit the first configuration: everything is served from cache.
        s.aggregates(&fact(1, 1));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 0,
                reused: 2
            }
        );
        // A brand-new depth still requires work for that hierarchy only.
        s.aggregates(&fact(2, 1));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 1,
                reused: 1
            }
        );
    }

    #[test]
    fn cache_is_bounded_and_evicts_least_recently_used() {
        let mut s = DrilldownSession::with_capacity(DrilldownMode::CachedDynamic, 2);
        assert_eq!(s.capacity(), 2);
        let a = fact(1, 1); // hierarchies A(depth 1), B(depth 1)
        s.aggregates(&a);
        assert_eq!(s.len(), 2);
        // A new A-depth fills the cache past capacity: the oldest state that
        // is not part of the current invocation (A depth 1) is evicted while
        // B (just reused this call) survives.
        s.aggregates(&fact(2, 1));
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 1,
                reused: 1
            }
        );
        // A depth 1 was evicted: recomputed again; B still cached.
        s.aggregates(&a);
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 1,
                reused: 1
            }
        );
    }

    #[test]
    fn equally_shaped_factors_with_different_content_do_not_alias() {
        // Two factors with the same name/depth/leaf-count but different paths
        // (think: the villages of district D1 vs district D2) must not reuse
        // each other's aggregates.
        let a = hierarchy("H", 0, 1, 2);
        let mut other_paths = a.paths.clone();
        for p in &mut other_paths {
            *p = vec![Value::str(format!("other-{}", p[0]))];
        }
        let b = HierarchyFactor::from_paths("H", a.attrs.clone(), other_paths);
        assert_eq!(a.depth(), b.depth());
        assert_eq!(a.leaf_count(), b.leaf_count());
        let mut s = DrilldownSession::new(DrilldownMode::CachedDynamic);
        s.aggregates(&Factorization::new(vec![a.clone()]));
        s.aggregates(&Factorization::new(vec![b]));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 1,
                reused: 0
            }
        );
        // The original factor is still served from cache.
        s.aggregates(&Factorization::new(vec![a]));
        assert_eq!(
            s.stats(),
            SessionStats {
                recomputed: 0,
                reused: 1
            }
        );
    }

    #[test]
    fn aggregates_are_identical_across_modes() {
        let f = fact(2, 2);
        let from_static = DrilldownSession::new(DrilldownMode::Static).aggregates(&f);
        let mut dynamic = DrilldownSession::new(DrilldownMode::CachedDynamic);
        dynamic.aggregates(&fact(2, 1));
        let from_dynamic = dynamic.aggregates(&f);
        for c in 0..f.n_cols() {
            assert_eq!(from_static.total(c), from_dynamic.total(c));
            assert_eq!(from_static.counts(c), from_dynamic.counts(c));
        }
        assert_eq!(from_static.grand_total(), from_dynamic.grand_total());
    }
}
