//! Per-cluster matrix operations (Appendix E/F).
//!
//! The multi-level model's random effects are estimated per *cluster*: one
//! cluster per combination of the already-grouped (inter-cluster) attributes,
//! with only the newly drilled attribute (and any features derived from it)
//! varying inside a cluster. Because the drill-down hierarchy is ordered last
//! in the factorisation, a cluster's rows are vertically adjacent and every
//! column except the trailing intra-cluster columns is constant within the
//! cluster — which is what the per-cluster operators exploit: each cluster's
//! gram / left / right product is assembled from one shared rank-one structure
//! plus the (few) intra columns.

use crate::encoded::{EncodedFactorization, EncodedFeatureMap};
use crate::factorization::Factorization;
use crate::feature::FeatureMap;
use crate::parallel::Parallelism;
use reptile_linalg::Matrix;

/// One cluster: a contiguous block of conceptual rows sharing every column
/// except the trailing intra-cluster columns.
#[derive(Debug, Clone)]
pub struct ClusterInfo {
    /// First conceptual row of the cluster.
    pub start_row: usize,
    /// Number of rows in the cluster.
    pub len: usize,
    /// Feature value of each column for the cluster; entries of intra-cluster
    /// columns are unused (they vary within the cluster).
    pub const_features: Vec<f64>,
    /// Feature values of the intra-cluster columns: `intra_features[r][k]` is
    /// the value of the k-th intra column in the cluster's r-th row.
    pub intra_features: Vec<Vec<f64>>,
}

/// The partition of a factorisation's rows into clusters.
#[derive(Debug, Clone)]
pub struct ClusterPartition {
    clusters: Vec<ClusterInfo>,
    n_cols: usize,
    /// Global column indices of the intra-cluster columns (a suffix of the
    /// column range).
    intra_columns: Vec<usize>,
}

impl ClusterPartition {
    /// Build the partition treating only the very last column as
    /// intra-cluster (the common single-attribute drill-down).
    pub fn new(fact: &Factorization, features: &FeatureMap) -> Self {
        Self::with_intra_levels(fact, features, 1)
    }

    /// Build the partition with the trailing `intra_levels` levels of the last
    /// hierarchy treated as intra-cluster columns (used when auxiliary or
    /// custom features are derived from the drilled attribute).
    pub fn with_intra_levels(
        fact: &Factorization,
        features: &FeatureMap,
        intra_levels: usize,
    ) -> Self {
        let hierarchies = fact.hierarchies();
        let depths: Vec<usize> = hierarchies.iter().map(|h| h.depth()).collect();
        let leaf_counts: Vec<usize> = hierarchies.iter().map(|h| h.leaf_count()).collect();
        Self::build(
            fact.n_cols(),
            &depths,
            &leaf_counts,
            |h, level| fact.column_of(h, level),
            |h, level, idx| {
                features.value(fact.column_of(h, level), &hierarchies[h].paths[idx][level])
            },
            |prefix_len, a, b| {
                let lastf = hierarchies.last().expect("non-empty");
                lastf.paths[a][..prefix_len] == lastf.paths[b][..prefix_len]
            },
            intra_levels,
            &Parallelism::serial(),
        )
    }

    /// Build the partition from the dictionary-encoded representation: the
    /// same output as [`ClusterPartition::with_intra_levels`] (bit-identical
    /// `f64` features), but every path comparison is a `u32` compare and
    /// every feature lookup a flat-slice index instead of a `Value` slice
    /// compare plus a `BTreeMap` walk.
    /// The earlier-hierarchy combination loop — the `O(n_rows)` bulk of the
    /// partition build — is sharded over `par` (the coordinator-local
    /// thread budget; pass [`Parallelism::serial`] for the inline build).
    /// Combinations are independent and gathered in combination order, so
    /// the partition is bit-identical for any budget.
    pub fn from_encoded(
        fact: &EncodedFactorization,
        features: &EncodedFeatureMap,
        intra_levels: usize,
        par: &Parallelism,
    ) -> Self {
        let factors = fact.factors();
        let depths: Vec<usize> = factors.iter().map(|f| f.depth()).collect();
        let leaf_counts: Vec<usize> = factors.iter().map(|f| f.leaf_count()).collect();
        Self::build(
            fact.n_cols(),
            &depths,
            &leaf_counts,
            |h, level| fact.column_of(h, level),
            |h, level, idx| features.value(fact.column_of(h, level), factors[h].code(level, idx)),
            |prefix_len, a, b| {
                let lastf = factors.last().expect("non-empty");
                (0..prefix_len).all(|level| lastf.code(level, a) == lastf.code(level, b))
            },
            intra_levels,
            par,
        )
    }

    /// Shared partition construction, parameterised over the backend's
    /// representation: `column_of(h, level)` maps a hierarchy level to its
    /// global column, `feature(h, level, path_idx)` reads that path's feature
    /// value, and `last_prefix_eq(prefix_len, a, b)` compares two paths of
    /// the *last* hierarchy on their inter-cluster prefix. Both public
    /// constructors inline this one body, so the backends cannot drift.
    #[allow(clippy::too_many_arguments)]
    fn build(
        m: usize,
        depths: &[usize],
        leaf_counts: &[usize],
        column_of: impl Fn(usize, usize) -> usize + Sync,
        feature: impl Fn(usize, usize, usize) -> f64 + Sync,
        last_prefix_eq: impl Fn(usize, usize, usize) -> bool + Sync,
        intra_levels: usize,
        par: &Parallelism,
    ) -> Self {
        assert!(!depths.is_empty(), "factorization has no hierarchies");
        let last = depths.len() - 1;
        let depth = depths[last];
        let intra_levels = intra_levels.clamp(1, depth);
        let prefix_len = depth - intra_levels;
        let intra_columns: Vec<usize> = (prefix_len..depth)
            .map(|level| column_of(last, level))
            .collect();

        // Group the last hierarchy's paths by their inter-cluster prefix.
        let last_leafs = leaf_counts[last];
        let mut prefix_groups: Vec<(usize, usize)> = Vec::new(); // (start path, len)
        if last_leafs > 0 {
            if prefix_len == 0 {
                prefix_groups.push((0, last_leafs));
            } else {
                let mut i = 0usize;
                while i < last_leafs {
                    let start = i;
                    while i < last_leafs && last_prefix_eq(prefix_len, start, i) {
                        i += 1;
                    }
                    prefix_groups.push((start, i - start));
                }
            }
        }

        // Enumerate earlier-hierarchy combinations in row order. Each
        // combination's clusters are built independently (and gathered in
        // combination order when sharded over `par`).
        let earlier_combos: usize = leaf_counts[..last].iter().product();
        let total_combos = earlier_combos.max(1);
        let combo_clusters = |combo: usize, clusters: &mut Vec<ClusterInfo>| {
            // Decompose the combo into per-hierarchy path indices to read the
            // constant feature values of the earlier hierarchies.
            let mut const_features = vec![0.0f64; m];
            if last > 0 {
                let mut rem = combo;
                for h in (0..last).rev() {
                    let idx = rem % leaf_counts[h];
                    rem /= leaf_counts[h];
                    for level in 0..depths[h] {
                        const_features[column_of(h, level)] = feature(h, level, idx);
                    }
                }
            }
            for &(path_start, path_len) in &prefix_groups {
                let mut cf = const_features.clone();
                for level in 0..prefix_len {
                    cf[column_of(last, level)] = feature(last, level, path_start);
                }
                let intra_features: Vec<Vec<f64>> = (0..path_len)
                    .map(|i| {
                        (prefix_len..depth)
                            .map(|level| feature(last, level, path_start + i))
                            .collect()
                    })
                    .collect();
                clusters.push(ClusterInfo {
                    start_row: combo * last_leafs + path_start,
                    len: path_len,
                    const_features: cf,
                    intra_features,
                });
            }
        };
        let clusters = if par.is_serial() || total_combos <= 1 {
            let mut clusters = Vec::with_capacity(total_combos * prefix_groups.len());
            for combo in 0..total_combos {
                combo_clusters(combo, &mut clusters);
            }
            clusters
        } else {
            par.map_ranges(total_combos, |start, count| {
                let mut chunk = Vec::with_capacity(count * prefix_groups.len());
                for combo in start..start + count {
                    combo_clusters(combo, &mut chunk);
                }
                chunk
            })
            .concat()
        };
        ClusterPartition {
            clusters,
            n_cols: m,
            intra_columns,
        }
    }

    /// Reassemble a partition from shipped parts — the worker-side mirror of
    /// [`ClusterPartition::from_encoded`] for hosts that hold the clusters
    /// but not the factorisation they were built from. The clusters must be
    /// the coordinator's actual partition (shipped, not rebuilt) so both
    /// hosts run the per-cluster operators over identical `f64` features.
    pub fn from_raw_parts(
        clusters: Vec<ClusterInfo>,
        n_cols: usize,
        intra_columns: Vec<usize>,
    ) -> Self {
        ClusterPartition {
            clusters,
            n_cols,
            intra_columns,
        }
    }

    /// The clusters in row order.
    pub fn clusters(&self) -> &[ClusterInfo] {
        &self.clusters
    }

    /// Number of clusters `G`.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Row ranges `(start, len)` of every cluster — the shape the naive
    /// baselines consume.
    pub fn row_ranges(&self) -> Vec<(usize, usize)> {
        self.clusters.iter().map(|c| (c.start_row, c.len)).collect()
    }

    /// Number of feature columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Global column indices of the intra-cluster columns.
    pub fn intra_columns(&self) -> &[usize] {
        &self.intra_columns
    }

    /// Whether `col` varies within clusters.
    fn is_intra(&self, col: usize) -> bool {
        self.intra_columns.contains(&col)
    }

    fn intra_index(&self, col: usize) -> Option<usize> {
        self.intra_columns.iter().position(|c| *c == col)
    }

    /// The gram matrix of one cluster — the per-cluster body the serial and
    /// fanned-out [`ClusterPartition::grams`] budgets share.
    fn gram_of(&self, c: &ClusterInfo) -> Matrix {
        let m = self.n_cols;
        let s = c.len as f64;
        // Sums and cross sums of the intra columns.
        let k = self.intra_columns.len();
        let mut intra_sum = vec![0.0f64; k];
        let mut intra_cross = vec![0.0f64; k * k];
        for row in &c.intra_features {
            for a in 0..k {
                intra_sum[a] += row[a];
                for b in a..k {
                    intra_cross[a * k + b] += row[a] * row[b];
                }
            }
        }
        let mut g = Matrix::zeros(m, m);
        for j in 0..m {
            for l in j..m {
                let v = match (self.intra_index(j), self.intra_index(l)) {
                    (None, None) => s * c.const_features[j] * c.const_features[l],
                    (None, Some(b)) => c.const_features[j] * intra_sum[b],
                    (Some(a), None) => c.const_features[l] * intra_sum[a],
                    (Some(a), Some(b)) => {
                        let (a, b) = if a <= b { (a, b) } else { (b, a) };
                        intra_cross[a * k + b]
                    }
                };
                g.set(j, l, v);
                g.set(l, j, v);
            }
        }
        g
    }

    /// Per-cluster gram matrices `X_iᵀ·X_i` (Algorithm 5). Exploits that the
    /// inter-cluster columns are constant within the cluster. The
    /// per-cluster grams fan out over `par` (the coordinator-local thread
    /// budget), gathered in cluster order — bit-identical for any budget,
    /// clusters are independent.
    pub fn grams(&self, par: &Parallelism) -> Vec<Matrix> {
        if par.is_serial() {
            return self.clusters.iter().map(|c| self.gram_of(c)).collect();
        }
        par.map_items(self.clusters.len(), |i| self.gram_of(&self.clusters[i]))
    }

    /// The gram matrix of cluster `i` — the single-cluster entry point the
    /// remote E-step workers use; runs exactly the per-cluster body of
    /// [`ClusterPartition::grams`], so a worker-computed block is
    /// bit-identical to the coordinator's.
    pub fn gram_at(&self, i: usize) -> Matrix {
        self.gram_of(&self.clusters[i])
    }

    /// `v[cluster i's rows]·X_i` — the single-cluster entry point the remote
    /// E-step workers use; runs exactly the per-cluster body of
    /// [`ClusterPartition::left_mult_global_vec`].
    ///
    /// # Panics
    /// Panics if `v` is shorter than cluster `i`'s row range (remote
    /// handlers validate lengths before calling).
    pub fn left_mult_global_at(&self, i: usize, v: &[f64]) -> Vec<f64> {
        self.left_mult_global_cluster(&self.clusters[i], v)
    }

    /// Per-cluster right multiplications `X_i·A_i` (Algorithm 7); `a[i]` must
    /// be an `m × p` matrix.
    pub fn right_mult(&self, a: &[Matrix]) -> Vec<Matrix> {
        assert_eq!(
            a.len(),
            self.clusters.len(),
            "one right operand per cluster"
        );
        let m = self.n_cols;
        self.clusters
            .iter()
            .zip(a)
            .map(|(c, ai)| {
                assert_eq!(ai.rows(), m, "cluster right operand must have {m} rows");
                let p = ai.cols();
                // Base contribution of the constant columns, shared by all rows.
                let mut base = vec![0.0f64; p];
                for j in 0..m {
                    if self.is_intra(j) {
                        continue;
                    }
                    let f = c.const_features[j];
                    if f == 0.0 {
                        continue;
                    }
                    for (col, b) in base.iter_mut().enumerate() {
                        *b += f * ai.get(j, col);
                    }
                }
                let mut out = Matrix::zeros(c.len, p);
                for (r, intra) in c.intra_features.iter().enumerate() {
                    for (col, &b) in base.iter().enumerate() {
                        let mut v = b;
                        for (k, &icol) in self.intra_columns.iter().enumerate() {
                            v += intra[k] * ai.get(icol, col);
                        }
                        out.set(r, col, v);
                    }
                }
                out
            })
            .collect()
    }

    /// Append `X_i · beta` for one cluster to `out` — the per-cluster body
    /// shared by the serial and sharded right-multiplication variants.
    fn right_mult_vec_cluster(&self, c: &ClusterInfo, beta: &[f64], out: &mut Vec<f64>) {
        let m = self.n_cols;
        let mut base = 0.0;
        for (j, &bj) in beta.iter().enumerate().take(m) {
            if !self.is_intra(j) {
                base += c.const_features[j] * bj;
            }
        }
        for intra in &c.intra_features {
            let mut v = base;
            for (k, &icol) in self.intra_columns.iter().enumerate() {
                v += intra[k] * beta[icol];
            }
            out.push(v);
        }
    }

    /// Per-cluster right multiplication `X_i · beta_i` where each cluster has
    /// its own coefficient vector; results are concatenated in row order
    /// (this is the vertical concatenation used for `Z·b`). Contiguous
    /// cluster shards fan out over `par`, concatenated in cluster (= row)
    /// order — bit-identical to the serial concatenation.
    pub fn right_mult_per_cluster_vec(&self, betas: &[Vec<f64>], par: &Parallelism) -> Vec<f64> {
        assert_eq!(betas.len(), self.clusters.len(), "one beta per cluster");
        let m = self.n_cols;
        let shard = |start: usize, count: usize| -> Vec<f64> {
            let mut out = Vec::new();
            for (c, beta) in self.clusters[start..start + count]
                .iter()
                .zip(&betas[start..start + count])
            {
                assert_eq!(beta.len(), m);
                self.right_mult_vec_cluster(c, beta, &mut out);
            }
            out
        };
        if par.is_serial() {
            return shard(0, self.clusters.len());
        }
        par.map_ranges(self.clusters.len(), shard).concat()
    }

    /// Per-cluster right multiplication with a single shared vector operand
    /// (the common case `X·β`), concatenated in row order. Contiguous
    /// cluster shards fan out over `par`, concatenated in cluster (= row)
    /// order — bit-identical to the serial concatenation.
    pub fn right_mult_shared_vec(&self, beta: &[f64], par: &Parallelism) -> Vec<f64> {
        assert_eq!(beta.len(), self.n_cols);
        let shard = |start: usize, count: usize| -> Vec<f64> {
            let mut out = Vec::new();
            for c in &self.clusters[start..start + count] {
                self.right_mult_vec_cluster(c, beta, &mut out);
            }
            out
        };
        if par.is_serial() {
            return shard(0, self.clusters.len());
        }
        par.map_ranges(self.clusters.len(), shard).concat()
    }

    /// Per-cluster left multiplications `D_i·X_i` (Algorithm 6); `d[i]` must
    /// be a `q × len_i` matrix.
    pub fn left_mult(&self, d: &[Matrix]) -> Vec<Matrix> {
        assert_eq!(d.len(), self.clusters.len(), "one left operand per cluster");
        let m = self.n_cols;
        self.clusters
            .iter()
            .zip(d)
            .map(|(c, di)| {
                assert_eq!(
                    di.cols(),
                    c.len,
                    "cluster left operand must have as many columns as the cluster has rows"
                );
                let q = di.rows();
                let mut out = Matrix::zeros(q, m);
                for r in 0..q {
                    let row = di.row(r);
                    let row_sum: f64 = row.iter().sum();
                    for j in 0..m {
                        if self.is_intra(j) {
                            continue;
                        }
                        out.set(r, j, c.const_features[j] * row_sum);
                    }
                    for (k, &icol) in self.intra_columns.iter().enumerate() {
                        let v: f64 = row
                            .iter()
                            .zip(&c.intra_features)
                            .map(|(a, w)| a * w[k])
                            .sum();
                        out.set(r, icol, v);
                    }
                }
                out
            })
            .collect()
    }

    /// One cluster's `v[cluster rows]·X_i` — the per-cluster body shared by
    /// the serial and sharded global-vector left multiplications.
    fn left_mult_global_cluster(&self, c: &ClusterInfo, v: &[f64]) -> Vec<f64> {
        let m = self.n_cols;
        let slice = &v[c.start_row..c.start_row + c.len];
        let row_sum: f64 = slice.iter().sum();
        let mut out = vec![0.0f64; m];
        for (j, o) in out.iter_mut().enumerate().take(m) {
            if !self.is_intra(j) {
                *o = c.const_features[j] * row_sum;
            }
        }
        for (k, &icol) in self.intra_columns.iter().enumerate() {
            out[icol] = slice
                .iter()
                .zip(&c.intra_features)
                .map(|(a, w)| a * w[k])
                .sum();
        }
        out
    }

    /// Per-cluster left multiplication of one global row vector `v` (length
    /// `n`): returns, for each cluster, the `1 × m` result of
    /// `v[cluster rows]·X_i`. This is the shape `X_iᵀ·(y_i − X_i·β)` needs.
    /// The per-cluster products fan out over `par`, gathered in cluster
    /// order — bit-identical for any budget, clusters read disjoint slices
    /// of `v`.
    pub fn left_mult_global_vec(&self, v: &[f64], par: &Parallelism) -> Vec<Vec<f64>> {
        if par.is_serial() {
            return self
                .clusters
                .iter()
                .map(|c| self.left_mult_global_cluster(c, v))
                .collect();
        }
        par.map_items(self.clusters.len(), |i| {
            self.left_mult_global_cluster(&self.clusters[i], v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorization::HierarchyFactor;
    use reptile_linalg::naive;
    use reptile_relational::{AttrId, Value};

    fn example() -> (Factorization, FeatureMap) {
        let time = HierarchyFactor::from_paths(
            "time",
            vec![AttrId(0)],
            vec![vec![Value::str("t1")], vec![Value::str("t2")]],
        );
        let geo = HierarchyFactor::from_paths(
            "geo",
            vec![AttrId(1), AttrId(2)],
            vec![
                vec![Value::str("d1"), Value::str("v1")],
                vec![Value::str("d1"), Value::str("v2")],
                vec![Value::str("d2"), Value::str("v3")],
            ],
        );
        let fact = Factorization::new(vec![time, geo]);
        let mut features = FeatureMap::zeros(3);
        features.set(0, Value::str("t1"), 1.0);
        features.set(0, Value::str("t2"), 2.0);
        features.set(1, Value::str("d1"), 3.0);
        features.set(1, Value::str("d2"), -1.0);
        features.set(2, Value::str("v1"), 0.5);
        features.set(2, Value::str("v2"), 1.5);
        features.set(2, Value::str("v3"), 4.0);
        (fact, features)
    }

    /// A 3-level last hierarchy with an extra (pseudo) level, so that two
    /// trailing columns are intra-cluster.
    fn example_multi_intra() -> (Factorization, FeatureMap) {
        let time = HierarchyFactor::from_paths(
            "time",
            vec![AttrId(0)],
            vec![
                vec![Value::str("t1")],
                vec![Value::str("t2")],
                vec![Value::str("t3")],
            ],
        );
        let geo = HierarchyFactor::from_paths(
            "geo",
            vec![AttrId(1), AttrId(2), AttrId(3)],
            vec![
                vec![Value::str("d1"), Value::str("v1"), Value::str("v1")],
                vec![Value::str("d1"), Value::str("v2"), Value::str("v2")],
                vec![Value::str("d2"), Value::str("v3"), Value::str("v3")],
                vec![Value::str("d2"), Value::str("v4"), Value::str("v4")],
            ],
        );
        let fact = Factorization::new(vec![time, geo]);
        let mut features = FeatureMap::zeros(4);
        features.set(0, Value::str("t1"), 1.0);
        features.set(0, Value::str("t2"), 2.0);
        features.set(0, Value::str("t3"), -1.0);
        features.set(1, Value::str("d1"), 3.0);
        features.set(1, Value::str("d2"), -1.0);
        for (i, v) in ["v1", "v2", "v3", "v4"].iter().enumerate() {
            features.set(2, Value::str(v), i as f64 + 0.5);
            // pseudo level: e.g. rainfall per village
            features.set(3, Value::str(v), 100.0 - 10.0 * i as f64);
        }
        (fact, features)
    }

    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = seed;
        Matrix::from_fn(rows, cols, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / u32::MAX as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn clusters_cover_all_rows_contiguously() {
        let (fact, features) = example();
        let part = ClusterPartition::new(&fact, &features);
        // 2 time values x 2 districts = 4 clusters (Figure 3c: siblings per district).
        assert_eq!(part.len(), 4);
        let mut next = 0usize;
        let mut total = 0usize;
        for c in part.clusters() {
            assert_eq!(c.start_row, next);
            next += c.len;
            total += c.len;
            assert_eq!(c.intra_features.len(), c.len);
        }
        assert_eq!(total, fact.n_rows());
        assert_eq!(part.row_ranges().len(), 4);
        assert_eq!(part.intra_columns(), &[2]);
    }

    #[test]
    fn cluster_grams_match_naive() {
        let (fact, features) = example();
        let part = ClusterPartition::new(&fact, &features);
        let x = fact.materialize(&features);
        let expected = naive::cluster_grams(&x, &part.row_ranges()).unwrap();
        let got = part.grams(&Parallelism::serial());
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert!(g.max_abs_diff(e) < 1e-9, "{g:?} vs {e:?}");
        }
    }

    #[test]
    fn cluster_right_mult_matches_naive() {
        let (fact, features) = example();
        let part = ClusterPartition::new(&fact, &features);
        let x = fact.materialize(&features);
        let a: Vec<Matrix> = (0..part.len())
            .map(|i| pseudo_random(fact.n_cols(), 2, 10 + i as u64))
            .collect();
        let expected = naive::cluster_right_mult(&x, &a, &part.row_ranges()).unwrap();
        let got = part.right_mult(&a);
        for (g, e) in got.iter().zip(&expected) {
            assert!(g.max_abs_diff(e) < 1e-9);
        }
    }

    #[test]
    fn cluster_left_mult_matches_naive() {
        let (fact, features) = example();
        let part = ClusterPartition::new(&fact, &features);
        let x = fact.materialize(&features);
        let d: Vec<Matrix> = part
            .clusters()
            .iter()
            .enumerate()
            .map(|(i, c)| pseudo_random(2, c.len, 50 + i as u64))
            .collect();
        let expected = naive::cluster_left_mult(&d, &x, &part.row_ranges()).unwrap();
        let got = part.left_mult(&d);
        for (g, e) in got.iter().zip(&expected) {
            assert!(g.max_abs_diff(e) < 1e-9);
        }
    }

    #[test]
    fn shared_vector_helpers_match_naive() {
        let (fact, features) = example();
        let part = ClusterPartition::new(&fact, &features);
        let x = fact.materialize(&features);
        let beta = vec![0.3, -1.0, 2.0];
        let shared = part.right_mult_shared_vec(&beta, &Parallelism::serial());
        let expected = x.matmul(&Matrix::column_vector(&beta)).unwrap();
        for (i, v) in shared.iter().enumerate() {
            assert!((v - expected.get(i, 0)).abs() < 1e-9);
        }

        let v: Vec<f64> = (0..fact.n_rows()).map(|i| i as f64 * 0.25 - 0.5).collect();
        let per_cluster = part.left_mult_global_vec(&v, &Parallelism::serial());
        for (c, res) in part.clusters().iter().zip(&per_cluster) {
            let block = x.row_block(c.start_row, c.len);
            let expected = Matrix::row_vector(&v[c.start_row..c.start_row + c.len])
                .matmul(&block)
                .unwrap();
            for (j, r) in res.iter().enumerate() {
                assert!((r - expected.get(0, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn per_cluster_vec_mult_matches_block_products() {
        let (fact, features) = example();
        let part = ClusterPartition::new(&fact, &features);
        let x = fact.materialize(&features);
        let betas: Vec<Vec<f64>> = (0..part.len())
            .map(|i| vec![i as f64, 1.0 - i as f64, 0.5 * i as f64])
            .collect();
        let got = part.right_mult_per_cluster_vec(&betas, &Parallelism::serial());
        let mut idx = 0usize;
        for (c, beta) in part.clusters().iter().zip(&betas) {
            let block = x.row_block(c.start_row, c.len);
            let expected = block.matmul(&Matrix::column_vector(beta)).unwrap();
            for r in 0..c.len {
                assert!((got[idx] - expected.get(r, 0)).abs() < 1e-9);
                idx += 1;
            }
        }
        assert_eq!(idx, fact.n_rows());
    }

    #[test]
    fn multiple_intra_levels_match_naive() {
        let (fact, features) = example_multi_intra();
        let part = ClusterPartition::with_intra_levels(&fact, &features, 2);
        assert_eq!(part.intra_columns(), &[2, 3]);
        // 3 times x 2 districts = 6 clusters of 2 villages each.
        assert_eq!(part.len(), 6);
        let x = fact.materialize(&features);
        let expected = naive::cluster_grams(&x, &part.row_ranges()).unwrap();
        for (g, e) in part.grams(&Parallelism::serial()).iter().zip(&expected) {
            assert!(g.max_abs_diff(e) < 1e-9);
        }
        let beta = vec![0.3, -1.0, 2.0, 0.01];
        let shared = part.right_mult_shared_vec(&beta, &Parallelism::serial());
        let exp = x.matmul(&Matrix::column_vector(&beta)).unwrap();
        for (i, v) in shared.iter().enumerate() {
            assert!((v - exp.get(i, 0)).abs() < 1e-9);
        }
        let v: Vec<f64> = (0..fact.n_rows()).map(|i| (i % 5) as f64 - 2.0).collect();
        let per_cluster = part.left_mult_global_vec(&v, &Parallelism::serial());
        for (c, res) in part.clusters().iter().zip(&per_cluster) {
            let block = x.row_block(c.start_row, c.len);
            let e = Matrix::row_vector(&v[c.start_row..c.start_row + c.len])
                .matmul(&block)
                .unwrap();
            for (j, r) in res.iter().enumerate() {
                assert!((r - e.get(0, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn encoded_partition_is_bit_identical_to_value_partition() {
        for intra in [1usize, 2] {
            let (fact, features) = example_multi_intra();
            let legacy = ClusterPartition::with_intra_levels(&fact, &features, intra);
            let enc = EncodedFactorization::encode(&fact);
            let enc_features = EncodedFeatureMap::encode(&features, &enc);
            let encoded =
                ClusterPartition::from_encoded(&enc, &enc_features, intra, &Parallelism::serial());
            assert_eq!(legacy.intra_columns(), encoded.intra_columns());
            assert_eq!(legacy.len(), encoded.len());
            for (l, e) in legacy.clusters().iter().zip(encoded.clusters()) {
                assert_eq!(l.start_row, e.start_row);
                assert_eq!(l.len, e.len);
                assert_eq!(l.const_features, e.const_features);
                assert_eq!(l.intra_features, e.intra_features);
            }
        }
    }

    #[test]
    fn single_hierarchy_forms_one_cluster() {
        let only = HierarchyFactor::from_paths(
            "only",
            vec![AttrId(0)],
            vec![
                vec![Value::int(1)],
                vec![Value::int(2)],
                vec![Value::int(3)],
            ],
        );
        let fact = Factorization::new(vec![only]);
        let features = FeatureMap::indexed(&[vec![Value::int(1), Value::int(2), Value::int(3)]]);
        let part = ClusterPartition::new(&fact, &features);
        assert_eq!(part.len(), 1);
        assert_eq!(part.clusters()[0].len, 3);
    }
}
