//! Satellite: codec round-trip property test.
//!
//! `decode(encode(request)) == request` for randomized requests (random
//! predicates, group keys, unicode strings, random `f64` bit patterns
//! including NaN payloads), and the decoders reject truncated, garbage,
//! oversized and trailing-byte inputs with typed errors — never a panic,
//! never a partial success.

use reptile::Direction;
use reptile_datasets::SimRng;
use reptile_relational::{AggregateKind, Value};
use reptile_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    IngestRequest, ProtocolError, RecommendRequest, Request, RequestFrame, Response, ResponseFrame,
    ServeErrorKind, WireError, WireIngestReport, WireRecommendation, WireScoredGroup,
    MAX_FRAME_LEN, PROTOCOL_VERSION,
};

const STATISTICS: [AggregateKind; 7] = [
    AggregateKind::Count,
    AggregateKind::Sum,
    AggregateKind::Mean,
    AggregateKind::Std,
    AggregateKind::Var,
    AggregateKind::Min,
    AggregateKind::Max,
];

const ERROR_KINDS: [ServeErrorKind; 5] = [
    ServeErrorKind::Overloaded,
    ServeErrorKind::DeadlineExceeded,
    ServeErrorKind::BadRequest,
    ServeErrorKind::Engine,
    ServeErrorKind::Internal,
];

fn random_bits(rng: &mut SimRng) -> u64 {
    // Compose a full 64-bit pattern from two bounded draws so NaN payloads,
    // infinities and subnormals all occur.
    let hi = rng.below(1 << 32) as u64;
    let lo = rng.below(1 << 32) as u64;
    (hi << 32) | lo
}

fn random_f64(rng: &mut SimRng) -> f64 {
    f64::from_bits(random_bits(rng))
}

fn random_string(rng: &mut SimRng) -> String {
    const ALPHABET: [char; 12] = [
        'a', 'B', '7', '_', ' ', 'é', 'λ', '—', '中', '🦀', '\n', '"',
    ];
    let len = rng.below(12);
    (0..len)
        .map(|_| ALPHABET[rng.below(ALPHABET.len())])
        .collect()
}

fn random_value(rng: &mut SimRng) -> Value {
    match rng.below(4) {
        0 => Value::Null,
        1 => Value::Int(random_bits(rng) as i64),
        2 => Value::Float(random_f64(rng)),
        _ => Value::Str(random_string(rng).into()),
    }
}

fn random_direction(rng: &mut SimRng) -> Direction {
    match rng.below(3) {
        0 => Direction::TooHigh,
        1 => Direction::TooLow,
        _ => Direction::ShouldBe(random_f64(rng)),
    }
}

fn random_recommend(rng: &mut SimRng) -> RecommendRequest {
    RecommendRequest {
        predicate: (0..rng.below(4))
            .map(|_| (random_string(rng), random_value(rng)))
            .collect(),
        group_by: (0..rng.below(4)).map(|_| random_string(rng)).collect(),
        measure: random_string(rng),
        complaint_key: (0..rng.below(4)).map(|_| random_value(rng)).collect(),
        statistic: STATISTICS[rng.below(STATISTICS.len())],
        direction: random_direction(rng),
        deadline_ms: rng.below(1 << 31) as u32,
        fault: random_string(rng),
    }
}

fn random_ingest(rng: &mut SimRng) -> IngestRequest {
    let row = |rng: &mut SimRng| (0..rng.below(4)).map(|_| random_value(rng)).collect();
    IngestRequest {
        inserts: (0..rng.below(4)).map(|_| row(rng)).collect(),
        deletes: (0..rng.below(4)).map(|_| row(rng)).collect(),
    }
}

fn random_request_frame(rng: &mut SimRng) -> RequestFrame {
    RequestFrame {
        id: random_bits(rng),
        request: match rng.below(8) {
            0 => Request::Ping,
            1 | 2 => Request::Ingest(random_ingest(rng)),
            _ => Request::Recommend(random_recommend(rng)),
        },
    }
}

fn random_response_frame(rng: &mut SimRng) -> ResponseFrame {
    let response = match rng.below(4) {
        0 => Response::Pong,
        1 => Response::Error {
            kind: ERROR_KINDS[rng.below(ERROR_KINDS.len())],
            message: random_string(rng),
        },
        2 => Response::IngestReport(WireIngestReport {
            inserted: random_bits(rng),
            deleted: random_bits(rng),
            relation_version: random_bits(rng),
            touched_hierarchies: (0..rng.below(4)).map(|_| random_string(rng)).collect(),
        }),
        _ => Response::Recommendation(WireRecommendation {
            original_value: random_f64(rng),
            relation_version: random_bits(rng),
            ranked: (0..rng.below(4))
                .map(|_| WireScoredGroup {
                    hierarchy: random_string(rng),
                    added_attribute: random_string(rng),
                    key: (0..rng.below(3)).map(|_| random_value(rng)).collect(),
                    observed: random_f64(rng),
                    expected: random_f64(rng),
                    repaired_complaint_value: random_f64(rng),
                    penalty: random_f64(rng),
                    improvement: random_f64(rng),
                })
                .collect(),
        }),
    };
    ResponseFrame {
        id: random_bits(rng),
        response,
    }
}

/// `decode(encode(x)) == x` for randomized frames in both directions.
/// `Value`/`Direction` equality uses total bit-pattern order, so this holds
/// even for NaN payloads and signed zeros.
#[test]
fn roundtrip_randomized_frames() {
    let mut rng = SimRng::seed_from_u64(0xC0DEC);
    for _ in 0..500 {
        let req = random_request_frame(&mut rng);
        let decoded = decode_request(&encode_request(&req)).expect("request round-trip decodes");
        assert_eq!(decoded, req);

        let resp = random_response_frame(&mut rng);
        let encoded = encode_response(&resp);
        let decoded = decode_response(&encoded).expect("response round-trip decodes");
        // Response floats travel raw (`WireScoredGroup` holds plain `f64`s,
        // whose `==` is not reflexive for NaN), so the bit-exactness claim
        // is checked on the bytes: re-encoding the decoded frame must
        // reproduce the original encoding exactly.
        assert_eq!(encode_response(&decoded), encoded);
    }
}

/// Every strict prefix of a valid payload decodes to a typed error (almost
/// always `Truncated`; very short prefixes can fail on magic/version first)
/// — never a panic, never an `Ok`.
#[test]
fn truncation_at_every_prefix_is_typed() {
    let mut rng = SimRng::seed_from_u64(0x7241);
    for _ in 0..40 {
        let payload = encode_request(&random_request_frame(&mut rng));
        for cut in 0..payload.len() {
            let err = decode_request(&payload[..cut]).expect_err("prefix must not decode");
            match err {
                ProtocolError::Truncated
                | ProtocolError::BadMagic(_)
                | ProtocolError::UnsupportedVersion(_)
                | ProtocolError::UnknownKind(_) => {}
                other => panic!("unexpected error class for prefix {cut}: {other:?}"),
            }
        }
        let payload = encode_response(&random_response_frame(&mut rng));
        for cut in 0..payload.len() {
            decode_response(&payload[..cut]).expect_err("prefix must not decode");
        }
    }
}

/// Random garbage bytes never panic the decoders and never partially
/// succeed: any `Ok` must re-encode to a canonical payload that decodes to
/// the same frame (i.e. an accidental parse is still a *total* parse).
#[test]
fn garbage_never_panics_and_never_partially_decodes() {
    let mut rng = SimRng::seed_from_u64(0x6A42);
    for _ in 0..2000 {
        let len = rng.below(64);
        let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        if let Ok(frame) = decode_request(&bytes) {
            assert_eq!(decode_request(&encode_request(&frame)).unwrap(), frame);
        }
        if let Ok(frame) = decode_response(&bytes) {
            assert_eq!(decode_response(&encode_response(&frame)).unwrap(), frame);
        }
    }
}

/// Mutating a valid frame's header bytes yields the matching typed error.
#[test]
fn header_mutations_are_typed() {
    let valid = encode_request(&RequestFrame {
        id: 42,
        request: Request::Ping,
    });

    let mut bad_magic = valid.clone();
    bad_magic[0] = b'X';
    assert_eq!(
        decode_request(&bad_magic),
        Err(ProtocolError::BadMagic([b'X', b'P']))
    );

    let mut bad_version = valid.clone();
    bad_version[2] = PROTOCOL_VERSION + 1;
    assert_eq!(
        decode_request(&bad_version),
        Err(ProtocolError::UnsupportedVersion(PROTOCOL_VERSION + 1))
    );

    let mut bad_kind = valid.clone();
    bad_kind[3] = 0x7F;
    assert_eq!(
        decode_request(&bad_kind),
        Err(ProtocolError::UnknownKind(0x7F))
    );

    // A response kind on the request decoder is also UnknownKind.
    let pong = encode_response(&ResponseFrame {
        id: 1,
        response: Response::Pong,
    });
    assert!(matches!(
        decode_request(&pong),
        Err(ProtocolError::UnknownKind(0x80))
    ));

    let mut trailing = valid;
    trailing.push(0);
    assert_eq!(
        decode_request(&trailing),
        Err(ProtocolError::TrailingBytes(1))
    );
}

/// A hostile sequence count (huge `u32` with few bytes behind it) is
/// rejected before any allocation sized by it.
#[test]
fn hostile_sequence_counts_are_rejected() {
    let mut rng = SimRng::seed_from_u64(0xBADC);
    let valid = encode_request(&random_request_frame(&mut rng));
    // Stamp 0xFFFFFFFF over every aligned 4-byte window in the body; each
    // mutation must fail typed, not OOM or panic.
    for pos in (12..valid.len().saturating_sub(4)).step_by(1) {
        let mut hostile = valid.clone();
        hostile[pos..pos + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        let _ = decode_request(&hostile).expect_err("hostile count must be rejected");
    }
}

/// The stream framing layer: clean EOF at a boundary is `Ok(None)`,
/// mid-frame EOF is `Truncated`, an oversized length prefix is rejected
/// before allocation, and frames written with `write_frame` read back
/// byte-identically.
#[test]
fn stream_framing_roundtrip_and_rejection() {
    let mut rng = SimRng::seed_from_u64(0xF2A3);
    let frames: Vec<Vec<u8>> = (0..16)
        .map(|_| encode_request(&random_request_frame(&mut rng)))
        .collect();

    let mut stream = Vec::new();
    for payload in &frames {
        write_frame(&mut stream, payload).unwrap();
    }
    let mut cursor = std::io::Cursor::new(&stream);
    for payload in &frames {
        let read = read_frame(&mut cursor).unwrap().expect("frame present");
        assert_eq!(&read, payload);
    }
    assert!(
        read_frame(&mut cursor).unwrap().is_none(),
        "clean EOF is None"
    );

    // Truncated mid-frame: cut the stream inside the last frame.
    let cut = stream.len() - 1;
    let mut cursor = std::io::Cursor::new(&stream[..cut]);
    let mut outcome = Ok(Some(Vec::new()));
    for _ in 0..frames.len() {
        outcome = read_frame(&mut cursor);
        if outcome.is_err() {
            break;
        }
    }
    assert!(
        matches!(outcome, Err(WireError::Protocol(ProtocolError::Truncated))),
        "mid-frame EOF must be Truncated, got {outcome:?}"
    );

    // Oversized prefix: rejected before the payload is allocated or read.
    let mut oversized = Vec::new();
    oversized.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
    oversized.extend_from_slice(&[0u8; 16]);
    let mut cursor = std::io::Cursor::new(&oversized);
    assert!(matches!(
        read_frame(&mut cursor),
        Err(WireError::Protocol(ProtocolError::Oversized(n))) if n == MAX_FRAME_LEN + 1
    ));
}

/// Regression: an over-cap payload handed to `write_frame` is a typed io
/// error, not a panic, and nothing reaches the stream — a response that
/// cannot be framed must never wedge (or poison) the writer that tried.
#[test]
fn write_frame_rejects_oversized_payload_without_writing() {
    let payload = vec![0u8; MAX_FRAME_LEN as usize + 1];
    let mut out = Vec::new();
    let err = write_frame(&mut out, &payload).expect_err("over-cap payload must error");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(
        out.is_empty(),
        "nothing may be written before the size check"
    );

    // Exactly at the cap still writes fine.
    let payload = vec![0u8; MAX_FRAME_LEN as usize];
    let mut out = Vec::new();
    write_frame(&mut out, &payload).unwrap();
    assert_eq!(out.len(), 4 + MAX_FRAME_LEN as usize);
}
