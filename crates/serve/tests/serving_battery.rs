//! The serving test battery: pool-backed serving, concurrency, deadlines,
//! admission control, dedup-before-admission, panic containment, and the
//! shutdown ledger conservation law.
//!
//! Every admitted request that answers with data must be **bit-identical**
//! (`==`, never tolerance) to a serial engine evaluating the same complaint
//! over the same relation snapshot; every rejected request must receive a
//! typed error and no data.

use reptile::{Direction, Recommendation, Reptile};
use reptile_relational::{AggregateKind, IngestBatch, Predicate, Relation, Schema, Value, View};
use reptile_serve::{
    Client, ClientError, RecommendRequest, ServeConfig, ServeErrorKind, Server, WireRecommendation,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Same district/village/day dataset the session-layer serving tests use.
fn dataset() -> (Arc<Relation>, Arc<Schema>) {
    let schema = Arc::new(
        Schema::builder()
            .hierarchy("geo", ["district", "village"])
            .hierarchy("time", ["day"])
            .measure("reports")
            .build()
            .unwrap(),
    );
    let mut b = Relation::builder(schema.clone());
    for day in 0..3i64 {
        for d in 0..3 {
            for v in 0..4 {
                let village = format!("D{d}-V{v}");
                let base = 20.0 + d as f64 * 2.0 + v as f64 * 0.5;
                let value = if village == "D1-V3" && day == 1 {
                    base - 15.0
                } else {
                    base
                };
                b = b
                    .row([
                        Value::str(format!("D{d}")),
                        Value::str(village),
                        Value::int(day),
                        Value::float(value),
                    ])
                    .unwrap();
            }
        }
    }
    (Arc::new(b.build()), schema)
}

/// A wire request complaining about district `d` on day `day`.
fn request_for(d: usize, day: i64, deadline_ms: u32, fault: &str) -> RecommendRequest {
    RecommendRequest {
        predicate: vec![],
        group_by: vec!["district".into(), "day".into()],
        measure: "reports".into(),
        complaint_key: vec![Value::str(format!("D{d}")), Value::int(day)],
        statistic: AggregateKind::Mean,
        direction: Direction::TooLow,
        deadline_ms,
        fault: fault.into(),
    }
}

/// Serial reference: evaluate the same complaint on a fresh single-threaded
/// engine over `rel` and project onto the wire shape.
fn serial_reference(
    rel: &Arc<Relation>,
    schema: &Arc<Schema>,
    req: &RecommendRequest,
) -> WireRecommendation {
    let mut predicate = Predicate::all();
    for (name, value) in &req.predicate {
        predicate = predicate.and_eq(schema.attr(name).unwrap(), value.clone());
    }
    let group_by = req
        .group_by
        .iter()
        .map(|n| schema.attr(n).unwrap())
        .collect::<Vec<_>>();
    let view = Arc::new(
        View::compute(
            rel.clone(),
            predicate,
            group_by,
            schema.attr(&req.measure).unwrap(),
            &reptile_relational::Exec::Serial,
        )
        .unwrap(),
    );
    let engine = Reptile::new(rel.clone(), schema.clone());
    let rec: Recommendation = engine.recommend(&view, &req.complaint()).unwrap();
    WireRecommendation::from_recommendation(&rec, rel.version())
}

/// Bit-exact comparison of a served response against the serial reference.
fn assert_identical(got: &WireRecommendation, want: &WireRecommendation) {
    assert_eq!(got.original_value.to_bits(), want.original_value.to_bits());
    assert_eq!(got.ranked.len(), want.ranked.len());
    for (x, y) in got.ranked.iter().zip(&want.ranked) {
        assert_eq!(x.hierarchy, y.hierarchy);
        assert_eq!(x.added_attribute, y.added_attribute);
        assert_eq!(x.key, y.key);
        assert_eq!(x.observed.to_bits(), y.observed.to_bits());
        assert_eq!(x.expected.to_bits(), y.expected.to_bits());
        assert_eq!(
            x.repaired_complaint_value.to_bits(),
            y.repaired_complaint_value.to_bits()
        );
        assert_eq!(x.penalty.to_bits(), y.penalty.to_bits());
        assert_eq!(x.improvement.to_bits(), y.improvement.to_bits());
    }
}

/// Tentpole lock-in: responses served over the wire by pool-backed workers
/// are bit-identical to a serial engine, across many concurrent client
/// connections, and the shutdown ledger conserves.
#[test]
fn pool_backed_serving_matches_serial_reference() {
    let (rel, schema) = dataset();
    let engine = Arc::new(Reptile::new(rel.clone(), schema.clone()));
    let server = Server::bind(
        engine,
        "127.0.0.1:0",
        ServeConfig {
            workers: 4,
            max_pending: 64,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut expected = HashMap::new();
    for d in 0..3usize {
        for day in 0..3i64 {
            expected.insert(
                (d, day),
                serial_reference(&rel, &schema, &request_for(d, day, 0, "")),
            );
        }
    }
    let expected = Arc::new(expected);

    let handles: Vec<_> = (0..4)
        .map(|worker| {
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.ping().unwrap();
                for round in 0..3 {
                    for d in 0..3usize {
                        for day in 0..3i64 {
                            let got = client.recommend(request_for(d, day, 0, "")).unwrap();
                            assert_identical(&got, &expected[&(d, day)]);
                            let _ = (worker, round);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let ledger = server.shutdown();
    assert_eq!(ledger.admitted, 4 * 3 * 3 * 3);
    assert_eq!(
        ledger.completed + ledger.rejected + ledger.drained,
        ledger.admitted
    );
    assert!(ledger.conserved(), "{ledger:?}");
    assert_eq!(ledger.protocol_errors, 0);
    assert!(
        ledger.dedup_joined > 0,
        "concurrent identical requests should have joined in flight at least once: {ledger:?}"
    );
}

/// Satellite: serving under concurrent ingest with tight deadlines. Every
/// admitted request either returns a result bit-identical to a serial
/// engine over the snapshot version it reports, or a typed rejection; the
/// shutdown ledger conserves admitted = completed + rejected + drained.
#[test]
fn concurrent_ingest_with_tight_deadlines_is_exact_and_conserved() {
    let (rel, schema) = dataset();
    let engine = Arc::new(Reptile::new(rel.clone(), schema.clone()));
    let server = Arc::new(
        Server::bind(
            engine,
            "127.0.0.1:0",
            ServeConfig {
                workers: 4,
                max_pending: 32,
                fault_injection: true,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let addr = server.local_addr();

    // Ingest thread: stream new days in while clients hammer the door,
    // recording every relation snapshot by version for later verification.
    let snapshots: Arc<std::sync::Mutex<HashMap<u64, Arc<Relation>>>> = Arc::new(
        std::sync::Mutex::new(HashMap::from([(rel.version(), rel.clone())])),
    );
    let ingest_server = Arc::clone(&server);
    let ingest_snapshots = Arc::clone(&snapshots);
    let ingest = std::thread::spawn(move || {
        for day in 3..9i64 {
            let mut batch = IngestBatch::new();
            for d in 0..3 {
                for v in 0..4 {
                    batch = batch.insert([
                        Value::str(format!("D{d}")),
                        Value::str(format!("D{d}-V{v}")),
                        Value::int(day),
                        Value::float(21.0 + d as f64 - v as f64 * 0.25),
                    ]);
                }
            }
            let report = ingest_server.ingest(&batch).unwrap();
            ingest_snapshots
                .lock()
                .unwrap()
                .insert(report.relation.version(), report.relation.clone());
            std::thread::sleep(Duration::from_millis(5));
        }
    });

    // Client threads: a mix of untimed requests, generously-deadlined
    // requests, and impossible deadlines on slowed (fault-injected)
    // requests that must come back as typed DeadlineExceeded.
    let handles: Vec<_> = (0..3)
        .map(|worker: usize| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut answered: Vec<WireRecommendation> = Vec::new();
                let mut deadline_hits = 0usize;
                for round in 0..6 {
                    let d = (worker + round) % 3;
                    let day = (round % 3) as i64;
                    match client.recommend(request_for(d, day, 5_000, "")) {
                        Ok(rec) => answered.push(rec),
                        Err(ClientError::Server { kind, .. }) => {
                            assert!(
                                matches!(
                                    kind,
                                    ServeErrorKind::Overloaded | ServeErrorKind::DeadlineExceeded
                                ),
                                "only typed backpressure rejections allowed, got {kind}"
                            );
                        }
                        Err(other) => panic!("unexpected client failure: {other}"),
                    }
                    // An impossible deadline on a slowed request: typed
                    // rejection, never data. (Sleep dominates the 1 ms
                    // budget regardless of machine speed.)
                    match client.recommend(request_for(d, day, 1, "sleep:60")) {
                        Err(ClientError::Server { kind, .. }) => {
                            assert!(
                                matches!(
                                    kind,
                                    ServeErrorKind::DeadlineExceeded | ServeErrorKind::Overloaded
                                ),
                                "expired request must reject typed, got {kind}"
                            );
                            deadline_hits += 1;
                        }
                        Ok(_) => panic!("expired request must never receive data"),
                        Err(other) => panic!("unexpected client failure: {other}"),
                    }
                }
                (answered, deadline_hits)
            })
        })
        .collect();

    let mut answered = Vec::new();
    let mut deadline_hits = 0;
    for h in handles {
        let (a, d) = h.join().unwrap();
        answered.extend(a);
        deadline_hits += d;
    }
    ingest.join().unwrap();
    assert_eq!(
        deadline_hits,
        3 * 6,
        "every impossible deadline rejected typed"
    );
    assert!(!answered.is_empty());

    // Exactness under ingest: each response must match a serial engine over
    // the exact snapshot version it claims to have been evaluated on.
    let snapshots = snapshots.lock().unwrap();
    for rec in &answered {
        let snapshot = snapshots
            .get(&rec.relation_version)
            .unwrap_or_else(|| panic!("response reports unknown version {}", rec.relation_version));
        // Reconstruct which request produced it: clients only complain
        // about days 0..3, so recompute those nine candidates serially over
        // the claimed snapshot and require an exact (==) match.
        let mut matched = false;
        'outer: for d in 0..3usize {
            for day in 0..3i64 {
                let req = request_for(d, day, 0, "");
                let want = serial_reference(snapshot, &schema, &req);
                if want == *rec {
                    matched = true;
                    break 'outer;
                }
            }
        }
        assert!(
            matched,
            "response over version {} matches no serial reference",
            rec.relation_version
        );
    }
    drop(snapshots);

    let server = Arc::try_unwrap(server).unwrap_or_else(|_| panic!("server still shared"));
    let ledger = server.shutdown();
    assert!(ledger.conserved(), "{ledger:?}");
    assert_eq!(ledger.protocol_errors, 0);
    assert!(ledger.rejected >= deadline_hits as u64 - ledger.overloaded);
}

/// Satellite: a panicking request handler is contained — the connection
/// gets a typed Internal error, the same connection keeps working, other
/// connections are unaffected, and the pool stays healthy (later requests
/// still evaluate correctly).
#[test]
fn panicking_handler_is_contained() {
    let (rel, schema) = dataset();
    let engine = Arc::new(Reptile::new(rel.clone(), schema.clone()));
    let server = Server::bind(
        engine,
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            max_pending: 16,
            fault_injection: true,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let want = serial_reference(&rel, &schema, &request_for(0, 0, 0, ""));

    let mut victim = Client::connect(addr).unwrap();
    let mut bystander = Client::connect(addr).unwrap();

    for _ in 0..3 {
        match victim.recommend(request_for(0, 0, 0, "panic")) {
            Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ServeErrorKind::Internal),
            other => panic!("panicking handler must answer typed Internal, got {other:?}"),
        }
        // Same connection still serves.
        assert_identical(&victim.recommend(request_for(0, 0, 0, "")).unwrap(), &want);
        // Other connections unaffected.
        assert_identical(
            &bystander.recommend(request_for(0, 0, 0, "")).unwrap(),
            &want,
        );
    }

    let ledger = server.shutdown();
    assert!(ledger.conserved(), "{ledger:?}");
    // Panicked evaluations are completed (answered), not lost.
    assert_eq!(ledger.admitted, 9);
    assert_eq!(ledger.completed, 9);
}

/// Satellite (fix regression): duplicate in-flight requests are collapsed by
/// the dedup signature *before* admission control, so duplicates never
/// consume pending-ledger slots; a genuinely distinct request is the one
/// that gets the typed Overloaded.
#[test]
fn duplicate_inflight_requests_do_not_consume_pending_slots() {
    let (rel, schema) = dataset();
    let engine = Arc::new(Reptile::new(rel.clone(), schema.clone()));
    let server = Server::bind(
        engine,
        "127.0.0.1:0",
        ServeConfig {
            workers: 4,
            max_pending: 2,
            fault_injection: true,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let want_a = serial_reference(&rel, &schema, &request_for(0, 0, 0, ""));

    // Two distinct slow requests fill both pending slots.
    let slow_a = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.recommend(request_for(0, 0, 0, "sleep:700")).unwrap()
    });
    let slow_b = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.recommend(request_for(1, 1, 0, "sleep:700")).unwrap()
    });
    // Let both get admitted and start sleeping.
    std::thread::sleep(Duration::from_millis(250));
    assert_eq!(server.ledger().admitted, 2, "both slow requests in flight");

    // Duplicates of request A (same view + complaint — the fault marker is
    // not part of the dedup signature) must be admitted as joins, not
    // refused, even though pending == max_pending.
    let dups: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.recommend(request_for(0, 0, 0, "")).unwrap()
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));

    // A genuinely distinct third signature is refused typed Overloaded.
    let mut overflow = Client::connect(addr).unwrap();
    match overflow.recommend(request_for(2, 2, 0, "")) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ServeErrorKind::Overloaded),
        other => panic!("distinct request past the bound must be Overloaded, got {other:?}"),
    }

    // Everyone waiting on A gets A's (bit-exact) result.
    assert_identical(&slow_a.join().unwrap(), &want_a);
    slow_b.join().unwrap();
    for dup in dups {
        assert_identical(&dup.join().unwrap(), &want_a);
    }

    let ledger = server.shutdown();
    assert!(ledger.conserved(), "{ledger:?}");
    assert_eq!(
        ledger.dedup_joined, 3,
        "all three duplicates joined in flight"
    );
    assert_eq!(ledger.overloaded, 1);
    assert_eq!(ledger.admitted, 5);
    assert_eq!(ledger.completed, 5);
}

/// Graceful shutdown drains: a queued-but-unstarted request gets a typed
/// drain response (never silence, never data), in-flight evaluations finish
/// and deliver, and the final ledger conserves.
#[test]
fn shutdown_drains_queued_requests_with_typed_responses() {
    let (rel, schema) = dataset();
    let engine = Arc::new(Reptile::new(rel.clone(), schema.clone()));
    let server = Server::bind(
        engine,
        "127.0.0.1:0",
        ServeConfig {
            // One worker the slow request occupies; later admissions queue
            // behind it on the pool.
            workers: 1,
            max_pending: 8,
            fault_injection: true,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.recommend(request_for(0, 0, 0, "sleep:600"))
    });
    std::thread::sleep(Duration::from_millis(200));
    // These distinct requests are admitted but (likely) queued behind the
    // sleeper on the single guaranteed worker.
    let queued: Vec<_> = (1..3)
        .map(|d| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.recommend(request_for(d, (d % 3) as i64, 0, ""))
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));

    let ledger = server.shutdown();
    assert!(ledger.conserved(), "{ledger:?}");

    // The sleeper either completed (its evaluation had started) or drained;
    // either way it got a typed outcome, and so did every queued request.
    match slow.join().unwrap() {
        Ok(_) => {}
        Err(ClientError::Server { kind, .. }) => {
            assert!(matches!(
                kind,
                ServeErrorKind::Overloaded | ServeErrorKind::DeadlineExceeded
            ));
        }
        Err(other) => panic!("sleeper must get a typed outcome, got {other}"),
    }
    for q in queued {
        match q.join().unwrap() {
            Ok(_) => {}
            Err(ClientError::Server { kind, .. }) => {
                assert!(matches!(
                    kind,
                    ServeErrorKind::Overloaded | ServeErrorKind::DeadlineExceeded
                ));
            }
            Err(other) => panic!("queued request must get a typed outcome, got {other}"),
        }
    }
}

/// Regression (review): a near-`MAX_FRAME_LEN` request whose fault marker
/// would be echoed into the error detail must come back as a *truncated*
/// typed `BadRequest` — the response frame stays under the cap, nothing
/// panics while holding the connection's writer lock, and the same
/// connection (and in-flight serving generally) keeps working.
#[test]
fn oversized_echoed_error_is_truncated_and_typed() {
    use reptile_serve::MAX_FRAME_LEN;

    let (rel, schema) = dataset();
    let engine = Arc::new(Reptile::new(rel.clone(), schema.clone()));
    // No fault injection: a non-empty fault marker is refused with an
    // error message that echoes the marker.
    let server = Server::bind(engine, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();

    // Minimal request shape: 46 bytes of encoding overhead, so this fault
    // length puts the request payload exactly at the frame cap while the
    // echoed error detail (+~35 bytes of surrounding text) would exceed it.
    let huge_fault = "x".repeat(MAX_FRAME_LEN as usize - 46);
    let req = RecommendRequest {
        predicate: vec![],
        group_by: vec![],
        measure: String::new(),
        complaint_key: vec![],
        statistic: AggregateKind::Mean,
        direction: Direction::TooLow,
        deadline_ms: 0,
        fault: huge_fault,
    };
    match client.recommend(req) {
        Err(ClientError::Server { kind, message }) => {
            assert_eq!(kind, ServeErrorKind::BadRequest);
            assert!(
                message.len() < 4096,
                "echoed error detail must be truncated, got {} bytes",
                message.len()
            );
            assert!(message.contains("[truncated]"), "{message:?}");
        }
        other => panic!("huge fault marker must answer typed BadRequest, got {other:?}"),
    }

    // The connection survived (resolution errors keep it open) and the
    // server still serves data.
    client.ping().unwrap();
    let want = serial_reference(&rel, &schema, &request_for(0, 0, 0, ""));
    assert_identical(&client.recommend(request_for(0, 0, 0, "")).unwrap(), &want);

    let ledger = server.shutdown();
    assert!(ledger.conserved(), "{ledger:?}");
    assert_eq!(ledger.bad_requests, 1);
}

/// Regression (review): dedup joins are free of the pending bound but NOT
/// unbounded — past `max_waiters_per_request` waiters on one in-flight
/// signature, further duplicates are refused with a typed `Overloaded`.
#[test]
fn dedup_joins_are_capped_per_signature() {
    let (rel, schema) = dataset();
    let engine = Arc::new(Reptile::new(rel.clone(), schema.clone()));
    let server = Server::bind(
        engine,
        "127.0.0.1:0",
        ServeConfig {
            workers: 4,
            max_pending: 8,
            max_waiters_per_request: 2,
            fault_injection: true,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let want = serial_reference(&rel, &schema, &request_for(0, 0, 0, ""));

    // One slow evaluation holds the signature in flight (1 waiter)...
    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.recommend(request_for(0, 0, 0, "sleep:700")).unwrap()
    });
    std::thread::sleep(Duration::from_millis(200));
    // ...one duplicate still joins (2 waiters == the cap)...
    let dup = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.recommend(request_for(0, 0, 0, "")).unwrap()
    });
    std::thread::sleep(Duration::from_millis(150));
    // ...and the next duplicate is refused typed, with pending nowhere
    // near max_pending.
    let mut overflow = Client::connect(addr).unwrap();
    match overflow.recommend(request_for(0, 0, 0, "")) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ServeErrorKind::Overloaded),
        other => panic!("join past the waiter cap must be Overloaded, got {other:?}"),
    }

    assert_identical(&slow.join().unwrap(), &want);
    assert_identical(&dup.join().unwrap(), &want);
    let ledger = server.shutdown();
    assert!(ledger.conserved(), "{ledger:?}");
    assert_eq!(ledger.dedup_joined, 1);
    assert_eq!(ledger.overloaded, 1);
    assert_eq!(ledger.admitted, 2);
    assert_eq!(ledger.completed, 2);
}

/// Regression (review): the admission dedup key is scoped by the relation
/// version, so a request admitted *after* an ingest never joins an
/// evaluation admitted *before* it (ViewKey's relation identity is the
/// lineage ident, stable across snapshots — unscoped, the join would
/// silently serve pre-admission data).
#[test]
fn dedup_never_joins_across_an_ingest_boundary() {
    let (rel, schema) = dataset();
    let engine = Arc::new(Reptile::new(rel.clone(), schema.clone()));
    let server = Server::bind(
        engine,
        "127.0.0.1:0",
        ServeConfig {
            workers: 4,
            max_pending: 8,
            fault_injection: true,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // A slow request holds its (pre-ingest) signature in flight.
    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.recommend(request_for(0, 0, 0, "sleep:700")).unwrap()
    });
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(server.ledger().admitted, 1);

    // Ingest a new day while it sleeps.
    let mut batch = IngestBatch::new();
    for d in 0..3 {
        for v in 0..4 {
            batch = batch.insert([
                Value::str(format!("D{d}")),
                Value::str(format!("D{d}-V{v}")),
                Value::int(3),
                Value::float(22.0 + d as f64 - v as f64 * 0.25),
            ]);
        }
    }
    let report = server.ingest(&batch).unwrap();
    let post = report.relation.clone();

    // An identical complaint admitted after the ingest must NOT join the
    // in-flight pre-ingest evaluation: it evaluates fresh over the new
    // snapshot and returns it bit-exactly.
    let mut after = Client::connect(addr).unwrap();
    let got = after.recommend(request_for(0, 0, 0, "")).unwrap();
    assert_eq!(got.relation_version, post.version());
    assert_identical(
        &got,
        &serial_reference(&post, &schema, &request_for(0, 0, 0, "")),
    );
    assert_eq!(
        server.ledger().dedup_joined,
        0,
        "a post-ingest request must never dedup-join a pre-ingest evaluation"
    );

    slow.join().unwrap();
    let ledger = server.shutdown();
    assert!(ledger.conserved(), "{ledger:?}");
    assert_eq!(ledger.admitted, 2);
    assert_eq!(ledger.completed, 2);
    assert_eq!(ledger.dedup_joined, 0);
}

/// Satellite: the wire `Ingest` frame and the unified [`reptile::IngestSink`]
/// surface. A client ingests through the front door; the wire report matches
/// what the in-process sink reports field for field, and a recommendation
/// over the post-ingest snapshot is bit-identical to a serial engine that
/// applied the same batch. A malformed batch answers a typed `Engine` error
/// and leaves the connection (and the relation) intact.
#[test]
fn wire_ingest_matches_in_process_sinks() {
    use reptile::IngestSink;
    use reptile_serve::IngestRequest;

    let (rel, schema) = dataset();
    let engine = Arc::new(Reptile::new(rel.clone(), schema.clone()));
    let server = Server::bind(engine, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // The same batch through two sinks: the wire, and the trait on a
    // serial engine.
    let inserts = vec![
        vec![
            Value::str("D0"),
            Value::str("D0-V9"),
            Value::int(1),
            Value::float(4.75),
        ],
        vec![
            Value::str("D3"),
            Value::str("D3-V0"),
            Value::int(2),
            Value::float(31.5),
        ],
    ];
    let deletes = vec![vec![
        Value::str("D0"),
        Value::str("D0-V0"),
        Value::int(0),
        Value::float(20.0),
    ]];
    let mut batch = IngestBatch::new();
    for row in &inserts {
        batch = batch.insert(row.clone());
    }
    for row in &deletes {
        batch = batch.delete(row.clone());
    }
    let mut serial_engine = Reptile::new(rel.clone(), schema.clone());
    let serial_report = serial_engine.apply_batch(&batch).unwrap();

    let wire_report = client.ingest(IngestRequest { inserts, deletes }).unwrap();
    assert_eq!(wire_report.inserted as usize, serial_report.inserted);
    assert_eq!(wire_report.deleted as usize, serial_report.deleted);
    assert_eq!(
        wire_report.relation_version,
        serial_report.relation.version()
    );
    assert_eq!(
        wire_report.touched_hierarchies,
        serial_report.touched_hierarchies
    );

    // A recommendation over the post-ingest snapshot, served over the wire,
    // is bit-identical to the serial reference over the same snapshot.
    let req = request_for(1, 1, 0, "");
    let want = serial_reference(&serial_report.relation, &schema, &req);
    let got = client.recommend(req).unwrap();
    assert_eq!(got.relation_version, wire_report.relation_version);
    assert_identical(&got, &want);

    // A row with the wrong arity is an Engine error, not a dropped
    // connection — and must not have bumped the snapshot.
    let err = client
        .ingest(IngestRequest {
            inserts: vec![vec![Value::str("short")]],
            deletes: vec![],
        })
        .unwrap_err();
    match err {
        ClientError::Server { kind, .. } => assert_eq!(kind, ServeErrorKind::Engine),
        other => panic!("expected typed server error, got {other}"),
    }
    let again = client.recommend(request_for(1, 1, 0, "")).unwrap();
    assert_eq!(again.relation_version, wire_report.relation_version);

    let ledger = server.shutdown();
    assert!(ledger.conserved(), "{ledger:?}");
    assert_eq!(ledger.protocol_errors, 0);
}
