//! The length-prefixed binary wire protocol (version 1).
//!
//! Everything is hand-rolled over `std` — no serde, no external codecs —
//! per the workspace rule. The framing is:
//!
//! ```text
//! [payload_len: u32 BE]  length of everything after these 4 bytes
//! [magic: 2 bytes "RP"]
//! [version: u8]          PROTOCOL_VERSION; others are rejected typed
//! [kind: u8]             frame kind (request or response discriminant)
//! [request_id: u64 BE]   echoed verbatim in the response
//! [body]                 kind-specific
//! ```
//!
//! Body primitives: integers are big-endian; `f64`s travel as
//! [`f64::to_bits`] so a recommendation's scores arrive **bit-identical**
//! (the serving exactness tests compare with `==`, never tolerance);
//! strings are `u32` length + UTF-8 bytes; sequences are `u32` count +
//! elements; [`Value`]s are a tag byte (0 null / 1 int / 2 float / 3 str)
//! plus the variant payload.
//!
//! **Decode safety.** Every decoder is total: truncated, oversized,
//! garbage, wrong-version and trailing-byte inputs all return a typed
//! [`ProtocolError`] — never a panic, never a partial read (a sequence
//! count is validated against the bytes actually remaining before any
//! allocation). The codec round-trip (`decode(encode(x)) == x`) and the
//! rejection behaviour are property-tested in `tests/protocol_roundtrip.rs`.

use reptile::{Complaint, Direction, Recommendation, ScoredGroup};
use reptile_relational::{AggregateKind, GroupKey, Value};
use std::io::{Read, Write};

/// Protocol version this build speaks. Frames carrying any other version
/// are rejected with [`ProtocolError::UnsupportedVersion`].
pub const PROTOCOL_VERSION: u8 = 1;

/// Frame magic: the first two payload bytes of every valid frame.
pub const MAGIC: [u8; 2] = *b"RP";

/// Hard cap on a frame's payload length. A length prefix above this is
/// rejected before any allocation ([`ProtocolError::Oversized`]).
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Frame header length: magic + version + kind + request id.
const HEADER_LEN: usize = 2 + 1 + 1 + 8;

/// Frame kind discriminants (requests low, responses high bit set).
const KIND_PING: u8 = 0;
const KIND_RECOMMEND: u8 = 1;
const KIND_INGEST: u8 = 2;
const KIND_PONG: u8 = 0x80;
const KIND_RECOMMENDATION: u8 = 0x81;
const KIND_ERROR: u8 = 0x82;
const KIND_INGEST_REPORT: u8 = 0x83;

/// Typed decode/framing failure. Every malformed input maps to exactly one
/// of these; decoding never panics and never partially succeeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The input ended before the structure it promised (also covers
    /// sequence counts larger than the bytes remaining).
    Truncated,
    /// The first two payload bytes were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// The frame speaks a protocol version this build does not.
    UnsupportedVersion(u8),
    /// Unknown frame kind, or a kind from the wrong direction (a response
    /// kind where a request was required, or vice versa).
    UnknownKind(u8),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// Bytes remained after the body was fully decoded.
    TrailingBytes(usize),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// An enum tag byte ([`Value`] tag, statistic, direction, error kind)
    /// was out of range.
    BadTag(u8),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "frame truncated"),
            ProtocolError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            ProtocolError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            ProtocolError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            ProtocolError::Oversized(n) => {
                write!(
                    f,
                    "frame payload of {n} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
                )
            }
            ProtocolError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the frame body"),
            ProtocolError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtocolError::BadTag(t) => write!(f, "tag byte {t} out of range"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A failure while moving frames over a stream: either the bytes were
/// malformed (typed) or the transport itself failed.
#[derive(Debug)]
pub enum WireError {
    /// The bytes violated the protocol.
    Protocol(ProtocolError),
    /// The underlying stream failed.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Protocol(e) => write!(f, "protocol error: {e}"),
            WireError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<ProtocolError> for WireError {
    fn from(e: ProtocolError) -> Self {
        WireError::Protocol(e)
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Wire types
// ---------------------------------------------------------------------------

/// A recommend request as it travels on the wire: the view *definition*
/// (attribute names, not ids — the server resolves them against its schema)
/// plus the complaint and the per-request deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct RecommendRequest {
    /// Equality predicate terms `attribute = value` (conjunction; order is
    /// irrelevant — the server canonicalises).
    pub predicate: Vec<(String, Value)>,
    /// Group-by attribute names of the complaint view.
    pub group_by: Vec<String>,
    /// Measure attribute name.
    pub measure: String,
    /// The complained tuple's group-by key, aligned with `group_by`.
    pub complaint_key: Vec<Value>,
    /// The complained statistic.
    pub statistic: AggregateKind,
    /// The complaint direction.
    pub direction: Direction,
    /// Per-request deadline in milliseconds from admission; `0` means "use
    /// the server's default" (which may be none).
    pub deadline_ms: u32,
    /// Test/ops chaos hook (`""` = none). Honoured only by servers started
    /// with fault injection enabled: `"panic"` panics the handler,
    /// `"sleep:N"` sleeps N ms before evaluating. A server without fault
    /// injection answers a non-empty marker with `BadRequest`.
    pub fault: String,
}

/// An ingest request as it travels on the wire: rows to insert and rows to
/// delete, each a full tuple in schema attribute order. The server applies
/// them as one atomic [`IngestBatch`](reptile_relational::IngestBatch) —
/// one new relation snapshot version, answered with
/// [`Response::IngestReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct IngestRequest {
    /// Rows to insert, each in schema attribute order.
    pub inserts: Vec<Vec<Value>>,
    /// Rows to delete (first match wins, as in
    /// [`IngestBatch::delete`](reptile_relational::IngestBatch::delete)).
    pub deletes: Vec<Vec<Value>>,
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Evaluate a complaint (see [`RecommendRequest`]).
    Recommend(RecommendRequest),
    /// Apply an ingest batch (see [`IngestRequest`]).
    Ingest(IngestRequest),
}

/// A request frame: the caller-chosen id is echoed in the response.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Caller-chosen correlation id, echoed verbatim.
    pub id: u64,
    /// The request.
    pub request: Request,
}

/// Typed failure classes a server can answer with. Rejections
/// (`Overloaded`, `DeadlineExceeded`) are the backpressure surface: a
/// rejected request **never** receives data, only one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeErrorKind {
    /// Refused at admission: the pending ledger is full (or the server is
    /// shutting down). Retry later, ideally with backoff.
    Overloaded,
    /// The per-request deadline expired before a result could be sent.
    DeadlineExceeded,
    /// The request was well-framed but invalid (unknown attribute, arity
    /// mismatch, fault marker without fault injection, undecodable frame).
    BadRequest,
    /// The engine evaluated the request and returned an error (e.g. the
    /// complaint tuple does not exist in the view).
    Engine,
    /// The request handler panicked; the connection remains usable.
    Internal,
}

impl ServeErrorKind {
    fn to_tag(self) -> u8 {
        match self {
            ServeErrorKind::Overloaded => 0,
            ServeErrorKind::DeadlineExceeded => 1,
            ServeErrorKind::BadRequest => 2,
            ServeErrorKind::Engine => 3,
            ServeErrorKind::Internal => 4,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, ProtocolError> {
        Ok(match tag {
            0 => ServeErrorKind::Overloaded,
            1 => ServeErrorKind::DeadlineExceeded,
            2 => ServeErrorKind::BadRequest,
            3 => ServeErrorKind::Engine,
            4 => ServeErrorKind::Internal,
            t => return Err(ProtocolError::BadTag(t)),
        })
    }
}

impl std::fmt::Display for ServeErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ServeErrorKind::Overloaded => "overloaded",
            ServeErrorKind::DeadlineExceeded => "deadline_exceeded",
            ServeErrorKind::BadRequest => "bad_request",
            ServeErrorKind::Engine => "engine",
            ServeErrorKind::Internal => "internal",
        };
        f.write_str(name)
    }
}

/// One scored group of a recommendation, wire-shaped: all `f64`s travel as
/// bit patterns, so the client reconstructs the server's scores exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct WireScoredGroup {
    /// Name of the hierarchy this group belongs to.
    pub hierarchy: String,
    /// The attribute added by the drill-down.
    pub added_attribute: String,
    /// The group key in the drilled-down view.
    pub key: Vec<Value>,
    /// Observed value of the complained statistic for the group.
    pub observed: f64,
    /// Model-estimated expected value of the statistic.
    pub expected: f64,
    /// Value of the complaint tuple's statistic after repairing this group.
    pub repaired_complaint_value: f64,
    /// Complaint penalty after the repair (lower is better).
    pub penalty: f64,
    /// Improvement over the unrepaired complaint penalty.
    pub improvement: f64,
}

/// A recommendation as it travels on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRecommendation {
    /// The complaint tuple's original statistic value.
    pub original_value: f64,
    /// The relation snapshot version the request was evaluated over —
    /// under concurrent ingest, the version to recompute against when
    /// verifying this response bit-exactly.
    pub relation_version: u64,
    /// All groups across hierarchies, best first, truncated to the
    /// engine's `top_k`.
    pub ranked: Vec<WireScoredGroup>,
}

impl WireRecommendation {
    /// Project an engine [`Recommendation`] onto the wire shape.
    pub fn from_recommendation(rec: &Recommendation, relation_version: u64) -> Self {
        WireRecommendation {
            original_value: rec.original_value,
            relation_version,
            ranked: rec
                .ranked
                .iter()
                .map(WireScoredGroup::from_scored)
                .collect(),
        }
    }
}

impl WireScoredGroup {
    /// Project an engine [`ScoredGroup`] onto the wire shape.
    pub fn from_scored(g: &ScoredGroup) -> Self {
        WireScoredGroup {
            hierarchy: g.hierarchy.clone(),
            added_attribute: g.added_attribute.clone(),
            key: g.key.values().to_vec(),
            observed: g.observed,
            expected: g.expected,
            repaired_complaint_value: g.repaired_complaint_value,
            penalty: g.penalty,
            improvement: g.improvement,
        }
    }
}

/// An ingest report as it travels on the wire: the same fields every
/// in-process ingest surface reports
/// ([`reptile::IngestReport`]), minus the relation
/// handle (the version stands in for it across the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireIngestReport {
    /// Rows inserted by the batch.
    pub inserted: u64,
    /// Rows deleted by the batch.
    pub deleted: u64,
    /// The post-ingest relation snapshot version.
    pub relation_version: u64,
    /// Hierarchies whose distinct full-depth path set changed.
    pub touched_hierarchies: Vec<String>,
}

impl WireIngestReport {
    /// Project an engine [`reptile::IngestReport`] onto the wire shape.
    pub fn from_report(report: &reptile::IngestReport) -> Self {
        WireIngestReport {
            inserted: report.inserted as u64,
            deleted: report.deleted as u64,
            relation_version: report.relation.version(),
            touched_hierarchies: report.touched_hierarchies.clone(),
        }
    }
}

/// A decoded response frame body.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// A successful evaluation.
    Recommendation(WireRecommendation),
    /// A typed failure (see [`ServeErrorKind`]).
    Error {
        /// The failure class.
        kind: ServeErrorKind,
        /// Human-readable detail.
        message: String,
    },
    /// Answer to [`Request::Ingest`]: the batch was applied atomically.
    IngestReport(WireIngestReport),
}

/// A response frame: `id` echoes the request's (0 for protocol errors
/// detected before an id could be decoded).
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseFrame {
    /// The request id this answers (0 if the request id never decoded).
    pub id: u64,
    /// The response body.
    pub response: Response,
}

// ---------------------------------------------------------------------------
// Complaint helpers
// ---------------------------------------------------------------------------

impl RecommendRequest {
    /// The request's complaint, with the wire key re-wrapped as a
    /// [`GroupKey`].
    pub fn complaint(&self) -> Complaint {
        Complaint {
            key: GroupKey(self.complaint_key.clone()),
            statistic: self.statistic,
            direction: self.direction,
        }
    }
}

impl IngestRequest {
    /// The request's rows as an engine
    /// [`IngestBatch`](reptile_relational::IngestBatch).
    pub fn batch(&self) -> reptile_relational::IngestBatch {
        let mut batch = reptile_relational::IngestBatch::new();
        for row in &self.inserts {
            batch = batch.insert(row.clone());
        }
        for row in &self.deletes {
            batch = batch.delete(row.clone());
        }
        batch
    }
}

fn statistic_tag(kind: AggregateKind) -> u8 {
    match kind {
        AggregateKind::Count => 0,
        AggregateKind::Sum => 1,
        AggregateKind::Mean => 2,
        AggregateKind::Std => 3,
        AggregateKind::Var => 4,
        AggregateKind::Min => 5,
        AggregateKind::Max => 6,
    }
}

fn statistic_from_tag(tag: u8) -> Result<AggregateKind, ProtocolError> {
    Ok(match tag {
        0 => AggregateKind::Count,
        1 => AggregateKind::Sum,
        2 => AggregateKind::Mean,
        3 => AggregateKind::Std,
        4 => AggregateKind::Var,
        5 => AggregateKind::Min,
        6 => AggregateKind::Max,
        t => return Err(ProtocolError::BadTag(t)),
    })
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_be_bytes());
        }
        Value::Float(f) => {
            out.push(2);
            put_f64(out, *f);
        }
        Value::Str(s) => {
            out.push(3);
            put_str(out, s);
        }
    }
}

fn put_values(out: &mut Vec<u8>, values: &[Value]) {
    put_u32(out, values.len() as u32);
    for v in values {
        put_value(out, v);
    }
}

fn header(kind: u8, id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&MAGIC);
    out.push(PROTOCOL_VERSION);
    out.push(kind);
    put_u64(&mut out, id);
    out
}

/// Encode a request frame's payload (everything after the length prefix).
pub fn encode_request(frame: &RequestFrame) -> Vec<u8> {
    match &frame.request {
        Request::Ping => header(KIND_PING, frame.id),
        Request::Recommend(req) => {
            let mut out = header(KIND_RECOMMEND, frame.id);
            put_u32(&mut out, req.predicate.len() as u32);
            for (attr, value) in &req.predicate {
                put_str(&mut out, attr);
                put_value(&mut out, value);
            }
            put_u32(&mut out, req.group_by.len() as u32);
            for attr in &req.group_by {
                put_str(&mut out, attr);
            }
            put_str(&mut out, &req.measure);
            put_values(&mut out, &req.complaint_key);
            out.push(statistic_tag(req.statistic));
            match req.direction {
                Direction::TooHigh => {
                    out.push(0);
                    put_u64(&mut out, 0);
                }
                Direction::TooLow => {
                    out.push(1);
                    put_u64(&mut out, 0);
                }
                Direction::ShouldBe(target) => {
                    out.push(2);
                    put_f64(&mut out, target);
                }
            }
            put_u32(&mut out, req.deadline_ms);
            put_str(&mut out, &req.fault);
            out
        }
        Request::Ingest(req) => {
            let mut out = header(KIND_INGEST, frame.id);
            put_u32(&mut out, req.inserts.len() as u32);
            for row in &req.inserts {
                put_values(&mut out, row);
            }
            put_u32(&mut out, req.deletes.len() as u32);
            for row in &req.deletes {
                put_values(&mut out, row);
            }
            out
        }
    }
}

/// Encode a response frame's payload (everything after the length prefix).
pub fn encode_response(frame: &ResponseFrame) -> Vec<u8> {
    match &frame.response {
        Response::Pong => header(KIND_PONG, frame.id),
        Response::Recommendation(rec) => {
            let mut out = header(KIND_RECOMMENDATION, frame.id);
            put_f64(&mut out, rec.original_value);
            put_u64(&mut out, rec.relation_version);
            put_u32(&mut out, rec.ranked.len() as u32);
            for g in &rec.ranked {
                put_str(&mut out, &g.hierarchy);
                put_str(&mut out, &g.added_attribute);
                put_values(&mut out, &g.key);
                put_f64(&mut out, g.observed);
                put_f64(&mut out, g.expected);
                put_f64(&mut out, g.repaired_complaint_value);
                put_f64(&mut out, g.penalty);
                put_f64(&mut out, g.improvement);
            }
            out
        }
        Response::Error { kind, message } => {
            let mut out = header(KIND_ERROR, frame.id);
            out.push(kind.to_tag());
            put_str(&mut out, message);
            out
        }
        Response::IngestReport(report) => {
            let mut out = header(KIND_INGEST_REPORT, frame.id);
            put_u64(&mut out, report.inserted);
            put_u64(&mut out, report.deleted);
            put_u64(&mut out, report.relation_version);
            put_u32(&mut out, report.touched_hierarchies.len() as u32);
            for name in &report.touched_hierarchies {
                put_str(&mut out, name);
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked cursor over a frame payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.remaining() < n {
            return Err(ProtocolError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, ProtocolError> {
        Ok(i64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A sequence count, validated against the bytes remaining (each
    /// element needs at least `min_element_len` bytes) so a hostile count
    /// can never trigger a huge allocation.
    fn count(&mut self, min_element_len: usize) -> Result<usize, ProtocolError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_element_len.max(1)) > self.remaining() {
            return Err(ProtocolError::Truncated);
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, ProtocolError> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8)
    }

    fn value(&mut self) -> Result<Value, ProtocolError> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.i64()?)),
            2 => Ok(Value::Float(self.f64()?)),
            3 => Ok(Value::str(self.str()?)),
            t => Err(ProtocolError::BadTag(t)),
        }
    }

    fn values(&mut self) -> Result<Vec<Value>, ProtocolError> {
        let n = self.count(1)?;
        (0..n).map(|_| self.value()).collect()
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.remaining() != 0 {
            return Err(ProtocolError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// Validate the frame header, returning `(kind, id, body reader)`.
fn read_header(payload: &[u8]) -> Result<(u8, u64, Reader<'_>), ProtocolError> {
    if payload.len() < HEADER_LEN {
        return Err(ProtocolError::Truncated);
    }
    let mut r = Reader::new(payload);
    let magic: [u8; 2] = r.take(2)?.try_into().expect("2 bytes");
    if magic != MAGIC {
        return Err(ProtocolError::BadMagic(magic));
    }
    let version = r.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::UnsupportedVersion(version));
    }
    let kind = r.u8()?;
    let id = r.u64()?;
    Ok((kind, id, r))
}

/// Decode a request frame payload (everything after the length prefix).
pub fn decode_request(payload: &[u8]) -> Result<RequestFrame, ProtocolError> {
    let (kind, id, mut r) = read_header(payload)?;
    let request = match kind {
        KIND_PING => Request::Ping,
        KIND_RECOMMEND => {
            let n_pred = r.count(5)?; // attr (≥4) + value tag (1)
            let mut predicate = Vec::with_capacity(n_pred);
            for _ in 0..n_pred {
                let attr = r.str()?;
                let value = r.value()?;
                predicate.push((attr, value));
            }
            let n_group = r.count(4)?;
            let mut group_by = Vec::with_capacity(n_group);
            for _ in 0..n_group {
                group_by.push(r.str()?);
            }
            let measure = r.str()?;
            let complaint_key = r.values()?;
            let statistic = statistic_from_tag(r.u8()?)?;
            let direction = match (r.u8()?, r.u64()?) {
                (0, _) => Direction::TooHigh,
                (1, _) => Direction::TooLow,
                (2, bits) => Direction::ShouldBe(f64::from_bits(bits)),
                (t, _) => return Err(ProtocolError::BadTag(t)),
            };
            let deadline_ms = r.u32()?;
            let fault = r.str()?;
            Request::Recommend(RecommendRequest {
                predicate,
                group_by,
                measure,
                complaint_key,
                statistic,
                direction,
                deadline_ms,
                fault,
            })
        }
        KIND_INGEST => {
            let n_ins = r.count(4)?;
            let mut inserts = Vec::with_capacity(n_ins);
            for _ in 0..n_ins {
                inserts.push(r.values()?);
            }
            let n_del = r.count(4)?;
            let mut deletes = Vec::with_capacity(n_del);
            for _ in 0..n_del {
                deletes.push(r.values()?);
            }
            Request::Ingest(IngestRequest { inserts, deletes })
        }
        k => return Err(ProtocolError::UnknownKind(k)),
    };
    r.finish()?;
    Ok(RequestFrame { id, request })
}

/// Decode a response frame payload (everything after the length prefix).
pub fn decode_response(payload: &[u8]) -> Result<ResponseFrame, ProtocolError> {
    let (kind, id, mut r) = read_header(payload)?;
    let response = match kind {
        KIND_PONG => Response::Pong,
        KIND_RECOMMENDATION => {
            let original_value = r.f64()?;
            let relation_version = r.u64()?;
            let n = r.count(8)?;
            let mut ranked = Vec::with_capacity(n);
            for _ in 0..n {
                ranked.push(WireScoredGroup {
                    hierarchy: r.str()?,
                    added_attribute: r.str()?,
                    key: r.values()?,
                    observed: r.f64()?,
                    expected: r.f64()?,
                    repaired_complaint_value: r.f64()?,
                    penalty: r.f64()?,
                    improvement: r.f64()?,
                });
            }
            Response::Recommendation(WireRecommendation {
                original_value,
                relation_version,
                ranked,
            })
        }
        KIND_ERROR => {
            let kind = ServeErrorKind::from_tag(r.u8()?)?;
            let message = r.str()?;
            Response::Error { kind, message }
        }
        KIND_INGEST_REPORT => {
            let inserted = r.u64()?;
            let deleted = r.u64()?;
            let relation_version = r.u64()?;
            let n = r.count(4)?;
            let mut touched_hierarchies = Vec::with_capacity(n);
            for _ in 0..n {
                touched_hierarchies.push(r.str()?);
            }
            Response::IngestReport(WireIngestReport {
                inserted,
                deleted,
                relation_version,
                touched_hierarchies,
            })
        }
        k => return Err(ProtocolError::UnknownKind(k)),
    };
    r.finish()?;
    Ok(ResponseFrame { id, response })
}

// ---------------------------------------------------------------------------
// Stream framing
// ---------------------------------------------------------------------------

/// Write one frame (length prefix + payload) to `w`.
///
/// A payload above [`MAX_FRAME_LEN`] returns an
/// [`std::io::ErrorKind::InvalidInput`] error **before** writing anything —
/// never a panic, and never a frame the peer would reject as oversized.
/// (Server responses stay under the cap by construction: error messages
/// are truncated at the door and recommendation sizes are bounded by the
/// engine's `top_k`; this guard is the backstop.)
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "frame payload of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame payload from `r`. Returns `Ok(None)` on a clean EOF at a
/// frame boundary; EOF mid-frame is [`ProtocolError::Truncated`], a length
/// prefix above [`MAX_FRAME_LEN`] is [`ProtocolError::Oversized`] (the
/// payload is *not* read, so a hostile prefix cannot trigger allocation).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(ProtocolError::Truncated.into())
                };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized(len).into());
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(ProtocolError::Truncated.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Some(payload))
}
