//! The TCP front door: accept loop, admission control, deadlines, drain.
//!
//! One [`Server`] owns a `TcpListener`, one accept thread, and one reader
//! thread per connection. Readers do only cheap work (decode, resolve
//! attribute names, admission); every admitted request becomes **one
//! may-block job on the process-wide shard pool**
//! ([`reptile_relational::spawn_pool_job`]) — the pool is the process's
//! only scheduler, so request evaluation and the shard scatters it
//! triggers share a single queue and worker set (the one-scheduler
//! invariant).
//!
//! **Admission & the ledger.** `max_pending` bounds the requests admitted
//! but not yet terminal. At the door, a request's
//! [`RequestSignature`] (the same dedup key `BatchServer::serve` uses) is
//! checked **before** the bound: a duplicate of an in-flight request joins
//! that request's waiter list without consuming a pending slot. A full
//! ledger refuses with a typed [`ServeErrorKind::Overloaded`]. Every
//! admitted request reaches exactly one terminal state — counted so that
//! on shutdown `admitted == completed + rejected + drained` (asserted by
//! [`ServeLedger::conserved`] and the serving test battery).
//!
//! **Deadlines.** A request's deadline (its own `deadline_ms`, else the
//! server default) is checked when its job starts and again per waiter
//! before each response: an expired request gets a typed
//! [`ServeErrorKind::DeadlineExceeded`] — never data, never silence.
//!
//! **Drain.** [`Server::shutdown`] stops admission (refusals are typed
//! `Overloaded`), evaluates nothing new — admitted-but-unstarted requests
//! get a typed drained response — lets in-flight evaluations finish and
//! deliver their responses, then joins every thread and returns the final
//! ledger.

use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, ProtocolError, RecommendRequest,
    Request, Response, ResponseFrame, ServeErrorKind, WireIngestReport, WireRecommendation,
};
use reptile::{Complaint, IngestReport, Reptile, Result as EngineResult, ViewKey};
use reptile_obs as obs;
use reptile_relational::{spawn_pool_job, AttrId, IngestBatch, Predicate};
use reptile_session::{BatchRequest, BatchServer, RequestSignature};
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Front-door configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shard-pool workers to guarantee (the pool never shrinks; other
    /// components may have grown it further). Serving dispatches to the
    /// pool even on a single-core host — requests overlap blocked time,
    /// not just compute.
    pub workers: usize,
    /// Bound on requests admitted but not yet terminal. Distinct in-flight
    /// signatures consume one slot each; duplicates join free.
    pub max_pending: usize,
    /// Default per-request deadline in ms applied when a request carries
    /// `deadline_ms == 0`. `0` here means no default deadline.
    pub default_deadline_ms: u32,
    /// Bound on requests sharing one in-flight evaluation (the original
    /// plus its dedup joins). Joins past the cap are refused with a typed
    /// `Overloaded` — without it, hammering one slow signature would grow
    /// an unbounded waiter list that `max_pending` never sees.
    pub max_waiters_per_request: usize,
    /// Write timeout in ms applied to every connection's stream. A client
    /// that stops reading (full TCP window) fails the blocked send after
    /// this long and the connection is dropped, instead of wedging a pool
    /// worker (and shutdown) forever. `0` means no timeout.
    pub write_timeout_ms: u64,
    /// Honour the wire `fault` markers (`"panic"`, `"sleep:N"`) — test and
    /// chaos tooling only. Off: a non-empty marker is a `BadRequest`.
    pub fault_injection: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().max(2))
                .unwrap_or(2),
            max_pending: 64,
            default_deadline_ms: 0,
            max_waiters_per_request: 32,
            write_timeout_ms: 5_000,
            fault_injection: false,
        }
    }
}

/// Final (or live) snapshot of the front door's request accounting.
///
/// Conservation: every admitted request is terminal exactly once, so once
/// the server is quiescent `admitted == completed + rejected + drained`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeLedger {
    /// Recommend requests that decoded and resolved successfully.
    pub received: u64,
    /// Requests admitted (including duplicates joined onto an in-flight
    /// evaluation).
    pub admitted: u64,
    /// Admissions that joined an in-flight signature without consuming a
    /// pending slot (subset of `admitted`).
    pub dedup_joined: u64,
    /// Admitted requests answered with an evaluated outcome — a
    /// recommendation, an engine error, or a contained handler panic.
    pub completed: u64,
    /// Admitted requests rejected with a typed `DeadlineExceeded`.
    pub rejected: u64,
    /// Admitted requests answered with a typed drain response because
    /// shutdown began before their evaluation started.
    pub drained: u64,
    /// Requests refused at the door with a typed `Overloaded` (never
    /// admitted; not part of the conservation sum).
    pub overloaded: u64,
    /// Malformed frames answered with a typed protocol error.
    pub protocol_errors: u64,
    /// Well-framed requests refused as `BadRequest` (unknown attribute,
    /// arity mismatch, fault marker without fault injection).
    pub bad_requests: u64,
}

impl ServeLedger {
    /// Whether the conservation law holds: `admitted == completed +
    /// rejected + drained`. Only meaningful at quiescence (after
    /// [`Server::shutdown`]).
    pub fn conserved(&self) -> bool {
        self.admitted == self.completed + self.rejected + self.drained
    }
}

/// Atomic cells behind [`ServeLedger`].
#[derive(Default)]
struct LedgerCells {
    received: AtomicU64,
    admitted: AtomicU64,
    dedup_joined: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    drained: AtomicU64,
    overloaded: AtomicU64,
    protocol_errors: AtomicU64,
    bad_requests: AtomicU64,
}

impl LedgerCells {
    fn snapshot(&self) -> ServeLedger {
        ServeLedger {
            received: self.received.load(Ordering::SeqCst),
            admitted: self.admitted.load(Ordering::SeqCst),
            dedup_joined: self.dedup_joined.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            drained: self.drained.load(Ordering::SeqCst),
            overloaded: self.overloaded.load(Ordering::SeqCst),
            protocol_errors: self.protocol_errors.load(Ordering::SeqCst),
            bad_requests: self.bad_requests.load(Ordering::SeqCst),
        }
    }
}

/// Outbound error messages are clamped to this many bytes before encoding.
/// Error detail can echo client-supplied text (a fault marker, an unknown
/// attribute name) from a request near [`crate::protocol::MAX_FRAME_LEN`];
/// unbounded, the echo plus response overhead would push the response frame
/// past the cap.
const MAX_ERROR_MESSAGE_LEN: usize = 2048;

/// Clamp an error message to [`MAX_ERROR_MESSAGE_LEN`] bytes (on a char
/// boundary), marking the cut.
fn truncate_error_message(message: &mut String) {
    if message.len() <= MAX_ERROR_MESSAGE_LEN {
        return;
    }
    let mut end = MAX_ERROR_MESSAGE_LEN;
    while !message.is_char_boundary(end) {
        end -= 1;
    }
    message.truncate(end);
    message.push_str("… [truncated]");
}

/// One client connection's write half (readers own their clone of the
/// stream). Responses from pool jobs and the reader interleave through the
/// mutex, one whole frame at a time.
struct Conn {
    writer: Mutex<TcpStream>,
}

impl Conn {
    /// A poisoned writer lock is still a usable `TcpStream` — recover it
    /// rather than cascading one send's panic into every other waiter on
    /// the connection (and into shutdown).
    fn lock_writer(&self) -> std::sync::MutexGuard<'_, TcpStream> {
        self.writer.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Best-effort frame send: a vanished client must not fail the server.
    fn send(&self, mut frame: ResponseFrame) {
        if let Response::Error { message, .. } = &mut frame.response {
            truncate_error_message(message);
        }
        let mut payload = encode_response(&frame);
        if payload.len() > crate::protocol::MAX_FRAME_LEN as usize {
            // Backstop for any other over-cap response (e.g. a pathological
            // recommendation): the waiter still gets a typed answer, never
            // an unframeable one.
            payload = encode_response(&ResponseFrame {
                id: frame.id,
                response: Response::Error {
                    kind: ServeErrorKind::Internal,
                    message: "response exceeded the frame cap".into(),
                },
            });
        }
        let mut writer = self.lock_writer();
        if write_frame(&mut *writer, &payload).is_err() {
            // The client vanished or stopped reading past the write
            // timeout: the connection is unusable. Close both halves so
            // its reader exits instead of feeding more requests into a
            // stream nobody drains.
            let _ = writer.shutdown(Shutdown::Both);
        }
    }

    fn shutdown_read(&self) {
        let writer = self.lock_writer();
        let _ = writer.shutdown(Shutdown::Read);
    }
}

/// A request waiting on an in-flight evaluation.
struct Waiter {
    conn: Arc<Conn>,
    id: u64,
    deadline: Option<Instant>,
}

/// A wire request resolved against the schema: everything a pool job needs.
struct ResolvedRequest {
    predicate: Predicate,
    group_by: Vec<AttrId>,
    measure: AttrId,
    complaint: Complaint,
    fault: String,
}

/// Admission-time dedup key: the session-layer [`RequestSignature`] scoped
/// by the relation version seen at admission. The version matters because
/// `ViewKey`'s relation identity is the lineage ident, which is *stable
/// across ingest snapshots* — without the version, a request admitted
/// after an ingest could join an evaluation started before it and silently
/// receive pre-admission data. (The cache layer keeps the lineage-keyed
/// signature on purpose: its entries are invalidated exactly; admission
/// dedup has no such hook, so it must never cross an ingest boundary.)
type DedupKey = (u64, RequestSignature);

struct ServeState {
    /// Admitted, not yet terminal (in-flight signatures; dedup joins don't
    /// add to this).
    pending: usize,
    /// In-flight evaluations by dedup key; the value is everyone
    /// waiting on the result.
    inflight: HashMap<DedupKey, Vec<Waiter>>,
    conns: Vec<Arc<Conn>>,
    readers: Vec<JoinHandle<()>>,
}

struct Core {
    batch: BatchServer,
    config: ServeConfig,
    state: Mutex<ServeState>,
    /// Signalled whenever `pending` decreases (shutdown waits on it).
    quiesced: Condvar,
    shutting_down: AtomicBool,
    ledger: LedgerCells,
}

impl Core {
    fn set_pending_gauges(&self, pending: usize) {
        obs::gauge_set(obs::Gauge::ServePendingDepth, pending as u64);
        obs::gauge_max(obs::Gauge::ServePendingDepthMax, pending as u64);
    }

    fn resolve(&self, req: &RecommendRequest) -> Result<ResolvedRequest, String> {
        if !req.fault.is_empty() && !self.config.fault_injection {
            return Err(format!(
                "fault marker {:?} requires a server with fault injection enabled",
                req.fault
            ));
        }
        let relation = self.batch.engine().relation();
        let schema = relation.schema();
        let mut predicate = Predicate::all();
        for (name, value) in &req.predicate {
            let attr = schema.attr(name).map_err(|e| e.to_string())?;
            predicate = predicate.and_eq(attr, value.clone());
        }
        let mut group_by = Vec::with_capacity(req.group_by.len());
        for name in &req.group_by {
            group_by.push(schema.attr(name).map_err(|e| e.to_string())?);
        }
        if req.complaint_key.len() != group_by.len() {
            return Err(format!(
                "complaint key arity {} does not match group-by arity {}",
                req.complaint_key.len(),
                group_by.len()
            ));
        }
        let measure = schema.attr(&req.measure).map_err(|e| e.to_string())?;
        Ok(ResolvedRequest {
            predicate,
            group_by,
            measure,
            complaint: req.complaint(),
            fault: req.fault.clone(),
        })
    }

    /// The dedup key admission checks — the *same* [`RequestSignature`]
    /// `BatchServer::serve` collapses duplicates with (built before any
    /// view exists), scoped by the relation version seen at admission so
    /// joins never cross an ingest boundary (see [`DedupKey`]).
    fn signature(&self, resolved: &ResolvedRequest) -> DedupKey {
        let relation = self.batch.engine().relation();
        let key = ViewKey::new(
            &relation,
            &resolved.predicate,
            resolved.group_by.clone(),
            resolved.measure,
        );
        (
            relation.version(),
            RequestSignature::from_parts(key, &resolved.complaint),
        )
    }

    /// Admit (or refuse) one resolved request from a reader thread.
    fn admit(self: &Arc<Self>, resolved: ResolvedRequest, waiter: Waiter) {
        self.ledger.received.fetch_add(1, Ordering::SeqCst);
        let sig = self.signature(&resolved);
        let mut state = self.state.lock().expect("serve state lock");
        if self.shutting_down.load(Ordering::SeqCst) {
            drop(state);
            self.ledger.overloaded.fetch_add(1, Ordering::SeqCst);
            obs::add_counter(obs::Counter::ServeOverloaded, 1);
            waiter.conn.send(ResponseFrame {
                id: waiter.id,
                response: Response::Error {
                    kind: ServeErrorKind::Overloaded,
                    message: "server is shutting down".into(),
                },
            });
            return;
        }
        if let Some(waiters) = state.inflight.get_mut(&sig) {
            // Dedup before admission control: a duplicate of an in-flight
            // request is admitted onto its waiter list without consuming a
            // pending slot, so duplicates can never trip the bound — up to
            // the per-signature waiter cap, past which joins are refused
            // typed (free joins must not become an unbounded bypass).
            if waiters.len() >= self.config.max_waiters_per_request.max(1) {
                drop(state);
                self.ledger.overloaded.fetch_add(1, Ordering::SeqCst);
                obs::add_counter(obs::Counter::ServeOverloaded, 1);
                waiter.conn.send(ResponseFrame {
                    id: waiter.id,
                    response: Response::Error {
                        kind: ServeErrorKind::Overloaded,
                        message: format!(
                            "in-flight request already has {} waiters",
                            self.config.max_waiters_per_request
                        ),
                    },
                });
                return;
            }
            waiters.push(waiter);
            drop(state);
            self.ledger.admitted.fetch_add(1, Ordering::SeqCst);
            self.ledger.dedup_joined.fetch_add(1, Ordering::SeqCst);
            obs::add_counter(obs::Counter::ServeAdmitted, 1);
            obs::add_counter(obs::Counter::ServeDedupJoined, 1);
            return;
        }
        if state.pending >= self.config.max_pending {
            drop(state);
            self.ledger.overloaded.fetch_add(1, Ordering::SeqCst);
            obs::add_counter(obs::Counter::ServeOverloaded, 1);
            waiter.conn.send(ResponseFrame {
                id: waiter.id,
                response: Response::Error {
                    kind: ServeErrorKind::Overloaded,
                    message: format!(
                        "pending ledger full ({} in flight)",
                        self.config.max_pending
                    ),
                },
            });
            return;
        }
        state.pending += 1;
        self.set_pending_gauges(state.pending);
        state.inflight.insert(sig.clone(), vec![waiter]);
        drop(state);
        self.ledger.admitted.fetch_add(1, Ordering::SeqCst);
        obs::add_counter(obs::Counter::ServeAdmitted, 1);
        let core = Arc::clone(self);
        spawn_pool_job(self.config.workers, true, move || {
            core.run_request(sig, resolved);
        });
    }

    /// Terminal bookkeeping shared by every response path.
    fn finish_waiter(&self, waiter: &Waiter, response: Response, class: Terminal) {
        match class {
            Terminal::Completed => {
                self.ledger.completed.fetch_add(1, Ordering::SeqCst);
                obs::add_counter(obs::Counter::ServeCompleted, 1);
            }
            Terminal::Rejected => {
                self.ledger.rejected.fetch_add(1, Ordering::SeqCst);
                obs::add_counter(obs::Counter::ServeDeadlineExpired, 1);
            }
            Terminal::Drained => {
                self.ledger.drained.fetch_add(1, Ordering::SeqCst);
                obs::add_counter(obs::Counter::ServeDrained, 1);
            }
        }
        waiter.conn.send(ResponseFrame {
            id: waiter.id,
            response,
        });
    }

    /// Evaluate one admitted signature on a pool worker.
    fn run_request(self: &Arc<Self>, sig: DedupKey, resolved: ResolvedRequest) {
        let now = Instant::now();
        let mut expired: Vec<Waiter> = Vec::new();
        let evaluate;
        {
            let mut state = self.state.lock().expect("serve state lock");
            if self.shutting_down.load(Ordering::SeqCst) {
                // Admitted before shutdown, evaluation not yet started:
                // drain with a typed response instead of computing.
                let waiters = state.inflight.remove(&sig).unwrap_or_default();
                state.pending -= 1;
                self.set_pending_gauges(state.pending);
                drop(state);
                for waiter in &waiters {
                    self.finish_waiter(
                        waiter,
                        Response::Error {
                            kind: ServeErrorKind::Overloaded,
                            message: "server shut down before evaluation; request drained".into(),
                        },
                        Terminal::Drained,
                    );
                }
                self.quiesced.notify_all();
                return;
            }
            let waiters = state.inflight.get_mut(&sig).expect("admitted entry");
            // Skip evaluation for waiters already past their deadline; if
            // nobody is left the whole evaluation is skipped (check and
            // entry removal are atomic under the state lock).
            let mut i = 0;
            while i < waiters.len() {
                if waiters[i].deadline.is_some_and(|d| now >= d) {
                    expired.push(waiters.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            evaluate = !waiters.is_empty();
            if !evaluate {
                state.inflight.remove(&sig);
                state.pending -= 1;
                self.set_pending_gauges(state.pending);
            }
        }
        for waiter in &expired {
            self.finish_waiter(
                waiter,
                Response::Error {
                    kind: ServeErrorKind::DeadlineExceeded,
                    message: "deadline expired before evaluation started".into(),
                },
                Terminal::Rejected,
            );
        }
        if !evaluate {
            self.quiesced.notify_all();
            return;
        }

        // Evaluate outside the lock. Panics are contained here and become a
        // typed Internal response; the pool worker survives regardless.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if !resolved.fault.is_empty() {
                apply_fault(&resolved.fault);
            }
            let view = self.batch.resolve_view(
                resolved.predicate.clone(),
                resolved.group_by.clone(),
                resolved.measure,
            )?;
            let version = view.relation().version();
            let request = BatchRequest::new(view, resolved.complaint.clone());
            self.batch
                .serve_one(&request)
                .map(|rec| WireRecommendation::from_recommendation(&rec, version))
        }));

        let waiters = {
            let mut state = self.state.lock().expect("serve state lock");
            let waiters = state.inflight.remove(&sig).unwrap_or_default();
            state.pending -= 1;
            self.set_pending_gauges(state.pending);
            waiters
        };
        let done = Instant::now();
        for waiter in &waiters {
            // A result after the deadline is never delivered as data — the
            // contract is a typed error, checked per waiter.
            if waiter.deadline.is_some_and(|d| done >= d) {
                self.finish_waiter(
                    waiter,
                    Response::Error {
                        kind: ServeErrorKind::DeadlineExceeded,
                        message: "deadline expired during evaluation".into(),
                    },
                    Terminal::Rejected,
                );
                continue;
            }
            let response = match &outcome {
                Ok(Ok(rec)) => Response::Recommendation(rec.clone()),
                Ok(Err(engine_err)) => Response::Error {
                    kind: ServeErrorKind::Engine,
                    message: engine_err.to_string(),
                },
                Err(_) => Response::Error {
                    kind: ServeErrorKind::Internal,
                    message: "request handler panicked; connection remains serviceable".into(),
                },
            };
            self.finish_waiter(waiter, response, Terminal::Completed);
        }
        self.quiesced.notify_all();
    }

    /// One connection's read loop: decode frames, answer pings, admit
    /// recommend requests. Returns when the peer closes (or shutdown
    /// closes the read half).
    fn reader_loop(self: &Arc<Self>, mut stream: TcpStream, conn: Arc<Conn>) {
        loop {
            let payload = match read_frame(&mut stream) {
                Ok(Some(payload)) => payload,
                Ok(None) => return,
                Err(err) => {
                    self.ledger.protocol_errors.fetch_add(1, Ordering::SeqCst);
                    obs::add_counter(obs::Counter::ServeProtocolErrors, 1);
                    conn.send(ResponseFrame {
                        id: 0,
                        response: Response::Error {
                            kind: ServeErrorKind::BadRequest,
                            message: err.to_string(),
                        },
                    });
                    // Framing is lost (mid-stream truncation / oversize /
                    // transport failure): no resync point, drop the
                    // connection.
                    return;
                }
            };
            let frame = match decode_request(&payload) {
                Ok(frame) => frame,
                Err(err @ ProtocolError::Truncated)
                | Err(err @ ProtocolError::BadMagic(_))
                | Err(err @ ProtocolError::UnsupportedVersion(_)) => {
                    // Header never validated: the id is untrustworthy and
                    // the stream state suspect — answer id 0 and drop.
                    self.ledger.protocol_errors.fetch_add(1, Ordering::SeqCst);
                    obs::add_counter(obs::Counter::ServeProtocolErrors, 1);
                    conn.send(ResponseFrame {
                        id: 0,
                        response: Response::Error {
                            kind: ServeErrorKind::BadRequest,
                            message: err.to_string(),
                        },
                    });
                    return;
                }
                Err(err) => {
                    // The frame itself was well-delimited: answer typed and
                    // keep the connection (the next frame can still parse).
                    self.ledger.protocol_errors.fetch_add(1, Ordering::SeqCst);
                    obs::add_counter(obs::Counter::ServeProtocolErrors, 1);
                    conn.send(ResponseFrame {
                        id: 0,
                        response: Response::Error {
                            kind: ServeErrorKind::BadRequest,
                            message: err.to_string(),
                        },
                    });
                    continue;
                }
            };
            match frame.request {
                Request::Ping => conn.send(ResponseFrame {
                    id: frame.id,
                    response: Response::Pong,
                }),
                Request::Recommend(req) => {
                    let resolved = match self.resolve(&req) {
                        Ok(resolved) => resolved,
                        Err(message) => {
                            self.ledger.bad_requests.fetch_add(1, Ordering::SeqCst);
                            conn.send(ResponseFrame {
                                id: frame.id,
                                response: Response::Error {
                                    kind: ServeErrorKind::BadRequest,
                                    message,
                                },
                            });
                            continue;
                        }
                    };
                    let deadline_ms = if req.deadline_ms > 0 {
                        req.deadline_ms
                    } else {
                        self.config.default_deadline_ms
                    };
                    let deadline = (deadline_ms > 0)
                        .then(|| Instant::now() + Duration::from_millis(u64::from(deadline_ms)));
                    self.admit(
                        resolved,
                        Waiter {
                            conn: Arc::clone(&conn),
                            id: frame.id,
                            deadline,
                        },
                    );
                }
                Request::Ingest(req) => {
                    // Ingest runs inline on the reader: per-connection
                    // ordering (a client's ingest happens-before its next
                    // recommend) falls out of the loop, and the engine's
                    // ingest path is already safe under concurrent serving.
                    if self.shutting_down.load(Ordering::SeqCst) {
                        conn.send(ResponseFrame {
                            id: frame.id,
                            response: Response::Error {
                                kind: ServeErrorKind::Overloaded,
                                message: "server is shutting down".into(),
                            },
                        });
                        continue;
                    }
                    let outcome =
                        catch_unwind(AssertUnwindSafe(|| self.batch.ingest(&req.batch())));
                    let response = match outcome {
                        Ok(Ok(report)) => {
                            Response::IngestReport(WireIngestReport::from_report(&report))
                        }
                        Ok(Err(engine_err)) => {
                            self.ledger.bad_requests.fetch_add(1, Ordering::SeqCst);
                            Response::Error {
                                kind: ServeErrorKind::Engine,
                                message: engine_err.to_string(),
                            }
                        }
                        Err(_) => Response::Error {
                            kind: ServeErrorKind::Internal,
                            message: "ingest handler panicked; connection remains serviceable"
                                .into(),
                        },
                    };
                    conn.send(ResponseFrame {
                        id: frame.id,
                        response,
                    });
                }
            }
        }
    }
}

/// Evaluation-side terminal classes (door refusals are counted separately).
enum Terminal {
    Completed,
    Rejected,
    Drained,
}

/// Honour a fault marker (only reachable with fault injection enabled):
/// `"panic"` panics, `"sleep:N"` sleeps N milliseconds, anything else is a
/// no-op (resolution already screened markers).
fn apply_fault(fault: &str) {
    if fault == "panic" {
        panic!("injected fault: request handler panic");
    }
    if let Some(ms) = fault
        .strip_prefix("sleep:")
        .and_then(|n| n.parse::<u64>().ok())
    {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// The serving front door: a TCP listener over one engine, scheduled on
/// the process-wide shard pool. See the module docs for the admission,
/// deadline and drain semantics.
pub struct Server {
    core: Arc<Core>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// accepting. The engine's relation/schema are shared read-only; the
    /// server owns a [`BatchServer`] whose shared caches give concurrent
    /// requests exactly-once view/model computation.
    pub fn bind(
        engine: Arc<Reptile>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let core = Arc::new(Core {
            batch: BatchServer::new(engine),
            config,
            state: Mutex::new(ServeState {
                pending: 0,
                inflight: HashMap::new(),
                conns: Vec::new(),
                readers: Vec::new(),
            }),
            quiesced: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            ledger: LedgerCells::default(),
        });
        let accept_core = Arc::clone(&core);
        let accept = std::thread::Builder::new()
            .name("reptile-serve-accept".into())
            .spawn(move || accept_loop(accept_core, listener))?;
        Ok(Server {
            core,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind the front door.
    pub fn engine(&self) -> &Arc<Reptile> {
        self.core.batch.engine()
    }

    /// Stream an ingest batch into the engine while serving continues:
    /// delta maintenance plus exact cache invalidation, like
    /// [`BatchServer::ingest`]. Ingest is an operator-side action, not a
    /// wire request — the front door serves reads.
    pub fn ingest(&self, batch: &IngestBatch) -> EngineResult<IngestReport> {
        self.core.batch.ingest(batch)
    }

    /// Live ledger snapshot (counters are monotonic; conservation is only
    /// guaranteed after [`Server::shutdown`]).
    pub fn ledger(&self) -> ServeLedger {
        self.core.ledger.snapshot()
    }

    /// Graceful shutdown: stop admission (typed `Overloaded` refusals),
    /// drain admitted-but-unstarted requests with a typed response, let
    /// in-flight evaluations finish and deliver, then join every thread.
    /// Returns the final ledger, on which
    /// [`ServeLedger::conserved`] holds.
    pub fn shutdown(mut self) -> ServeLedger {
        self.core.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the accept loop (it re-checks the flag per connection).
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Close every connection's read half: readers drain out while the
        // write halves stay open for in-flight responses.
        {
            let state = self.core.state.lock().expect("serve state lock");
            for conn in &state.conns {
                conn.shutdown_read();
            }
        }
        // Wait for every admitted request to reach a terminal state.
        {
            let mut state = self.core.state.lock().expect("serve state lock");
            while state.pending > 0 {
                state = self.core.quiesced.wait(state).expect("serve state lock");
            }
        }
        // Readers exit on EOF after the read-half shutdown; join them.
        let readers = {
            let mut state = self.core.state.lock().expect("serve state lock");
            std::mem::take(&mut state.readers)
        };
        for reader in readers {
            let _ = reader.join();
        }
        self.core.ledger.snapshot()
    }
}

impl reptile::IngestSink for Server {
    fn apply_batch(&mut self, batch: &IngestBatch) -> EngineResult<IngestReport> {
        self.ingest(batch)
    }
}

fn accept_loop(core: Arc<Core>, listener: TcpListener) {
    for incoming in listener.incoming() {
        if core.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let stream = match incoming {
            Ok(stream) => stream,
            Err(_) => {
                // Persistent accept failures (e.g. EMFILE under fd
                // exhaustion) would otherwise busy-spin this thread at
                // 100% CPU; back off briefly before retrying.
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        if core.config.write_timeout_ms > 0 {
            // Bound blocked sends: a client that stops reading fails the
            // write after the timeout instead of wedging a pool worker
            // (SO_SNDTIMEO is a socket option, so the cloned write half
            // shares it; reads are framed by the protocol, not timed).
            let _ =
                stream.set_write_timeout(Some(Duration::from_millis(core.config.write_timeout_ms)));
        }
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        let conn = Arc::new(Conn {
            writer: Mutex::new(write_half),
        });
        let reader_core = Arc::clone(&core);
        let reader_conn = Arc::clone(&conn);
        let handle = std::thread::Builder::new()
            .name("reptile-serve-conn".into())
            .spawn(move || reader_core.reader_loop(stream, reader_conn));
        let Ok(handle) = handle else { continue };
        let mut state = core.state.lock().expect("serve state lock");
        state.conns.push(conn);
        state.readers.push(handle);
    }
}
