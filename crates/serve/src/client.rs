//! A minimal blocking client for the front door — one connection, one
//! in-flight request at a time, request ids checked on every response.
//!
//! This is the client the examples, tests and serving bench use; it is
//! deliberately synchronous (std-only) and surfaces every server-side
//! refusal as a typed [`ClientError::Server`].

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, Request, RequestFrame, Response,
    ResponseFrame, ServeErrorKind, WireError, WireIngestReport, WireRecommendation,
};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or codec failure.
    Wire(WireError),
    /// The server closed the connection before answering.
    Closed,
    /// The response id or variant did not match the request.
    UnexpectedResponse(String),
    /// The server answered with a typed error.
    Server {
        /// Which typed refusal the server returned.
        kind: ServeErrorKind,
        /// Human-readable detail from the server.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(err) => write!(f, "wire failure: {err}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::UnexpectedResponse(detail) => {
                write!(f, "unexpected response: {detail}")
            }
            ClientError::Server { kind, message } => write!(f, "server error ({kind}): {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(err: WireError) -> Self {
        ClientError::Wire(err)
    }
}

impl From<crate::protocol::ProtocolError> for ClientError {
    fn from(err: crate::protocol::ProtocolError) -> Self {
        ClientError::Wire(WireError::Protocol(err))
    }
}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        ClientError::Wire(WireError::Io(err))
    }
}

/// One blocking connection to a [`crate::Server`].
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connect to a front door.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream, next_id: 1 })
    }

    fn round_trip(&mut self, request: Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = encode_request(&RequestFrame { id, request });
        write_frame(&mut self.stream, &payload)?;
        let Some(reply) = read_frame(&mut self.stream)? else {
            return Err(ClientError::Closed);
        };
        let ResponseFrame {
            id: reply_id,
            response,
        } = decode_response(&reply)?;
        // Protocol-level errors come back with id 0 (the server could not
        // trust the request header); everything else must echo our id.
        if reply_id != id && reply_id != 0 {
            return Err(ClientError::UnexpectedResponse(format!(
                "request id {id}, response id {reply_id}"
            )));
        }
        Ok(response)
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.round_trip(Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Send a recommend request and wait for its typed outcome.
    pub fn recommend(
        &mut self,
        request: crate::protocol::RecommendRequest,
    ) -> Result<WireRecommendation, ClientError> {
        match self.round_trip(Request::Recommend(request))? {
            Response::Recommendation(rec) => Ok(rec),
            Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Apply an ingest batch through the front door and wait for its
    /// report. The server applies the batch atomically: one new relation
    /// snapshot version, same semantics as every in-process ingest surface.
    pub fn ingest(
        &mut self,
        request: crate::protocol::IngestRequest,
    ) -> Result<WireIngestReport, ClientError> {
        match self.round_trip(Request::Ingest(request))? {
            Response::IngestReport(report) => Ok(report),
            Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }
}
