//! # reptile-serve — the network front door
//!
//! One process, one scheduler, one front door. This crate puts a TCP
//! server in front of a [`reptile::Reptile`] engine:
//!
//! - **Protocol** ([`protocol`]): a versioned, length-prefixed binary
//!   codec over `std::net` — no external dependencies. Frames are bounded
//!   ([`protocol::MAX_FRAME_LEN`]), every decode failure is a typed
//!   [`protocol::ProtocolError`], and `f64`s travel as raw bits so a
//!   round-tripped request compares equal bit-for-bit.
//! - **Scheduling** ([`server`]): admitted requests run as may-block jobs
//!   on the process-wide shard pool — the same workers that execute shard
//!   scatters — so the process has exactly one scheduler and serving
//!   concurrency composes with intra-request parallelism instead of
//!   fighting it.
//! - **Admission & deadlines** ([`server::ServeConfig`]): a bounded
//!   pending ledger refuses excess load with typed
//!   [`protocol::ServeErrorKind::Overloaded`] responses; per-request
//!   deadlines return typed
//!   [`protocol::ServeErrorKind::DeadlineExceeded`] — an expired request
//!   never receives data. Duplicate in-flight requests are detected by
//!   the session layer's dedup signature (scoped by the relation version
//!   seen at admission, so joins never cross an ingest boundary) *before*
//!   admission control and join the in-flight evaluation without
//!   consuming a pending slot — up to a per-signature waiter cap, past
//!   which further duplicates are refused typed. Outbound error detail is
//!   truncated so an echoed client payload can never push a response past
//!   the frame cap, and a write timeout drops clients that stop reading
//!   instead of wedging pool workers.
//! - **Drain** ([`server::Server::shutdown`]): graceful shutdown stops
//!   admission, answers queued-but-unstarted requests with a typed drain
//!   response, finishes in-flight evaluations, and returns a
//!   [`server::ServeLedger`] on which the conservation law
//!   `admitted == completed + rejected + drained` holds.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    IngestRequest, ProtocolError, RecommendRequest, Request, RequestFrame, Response, ResponseFrame,
    ServeErrorKind, WireError, WireIngestReport, WireRecommendation, WireScoredGroup,
    MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use server::{ServeConfig, ServeLedger, Server};
