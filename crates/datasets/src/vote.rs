//! Simulated US presidential election dataset (Appendix K "Vote" and the
//! Georgia case study of Appendix N, Figure 18).
//!
//! One geography hierarchy (state → county), a 2020 vote-share measure and a
//! 2020 total-votes measure, plus auxiliary 2016 per-county results that are
//! strongly predictive of 2020. The Georgia case study injects missing
//! records (halved totals) into selected counties.

use crate::correlate::correlated_with;
use crate::rng::SimRng;
use reptile_relational::{Relation, Schema, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration of the simulated election data.
#[derive(Debug, Clone, Copy)]
pub struct VoteConfig {
    /// Number of states.
    pub states: usize,
    /// Counties per state.
    pub counties_per_state: usize,
    /// Correlation between 2016 and 2020 county shares.
    pub year_correlation: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VoteConfig {
    fn default() -> Self {
        VoteConfig {
            states: 10,
            counties_per_state: 30,
            year_correlation: 0.95,
            seed: 33,
        }
    }
}

/// The simulated dataset.
#[derive(Debug, Clone)]
pub struct VoteDataset {
    /// Schema: hierarchy `geo = [state, county]`, measures `share_2020`
    /// (percentage of votes for the candidate) and `total_votes`.
    pub schema: Arc<Schema>,
    /// One row per county.
    pub relation: Arc<Relation>,
    /// Auxiliary 2016 share per county.
    pub share_2016: BTreeMap<Value, f64>,
    /// Auxiliary 2016 total votes per county.
    pub totals_2016: BTreeMap<Value, f64>,
}

impl VoteDataset {
    /// Generate the dataset.
    pub fn generate(config: VoteConfig) -> Self {
        let mut rng = SimRng::seed_from_u64(config.seed);
        let schema = Arc::new(
            Schema::builder()
                .hierarchy("geo", ["state", "county"])
                .measure("share_2020")
                .measure("total_votes")
                .build()
                .unwrap(),
        );
        // Underlying county lean: state-level mean plus county noise.
        let mut counties = Vec::new();
        let mut lean = Vec::new();
        let mut sizes = Vec::new();
        for s in 0..config.states {
            let state_lean = rng.uniform_range(30.0, 70.0);
            for c in 0..config.counties_per_state {
                counties.push((
                    Value::str(format!("State{s:02}")),
                    Value::str(format!("S{s:02}-C{c:03}")),
                ));
                lean.push((state_lean + rng.normal(0.0, 8.0)).clamp(5.0, 95.0));
                sizes.push((rng.uniform_range(3.0, 12.0)).exp2() * 1000.0);
            }
        }
        // 2016 share correlated with the county lean; 2020 share = lean + swing.
        let share_2016_vec = correlated_with(&lean, config.year_correlation, 50.0, 15.0, &mut rng);
        let mut relation = Relation::empty(schema.clone());
        let mut share_2016 = BTreeMap::new();
        let mut totals_2016 = BTreeMap::new();
        for (i, (state, county)) in counties.iter().enumerate() {
            let share20 = (lean[i] + rng.normal(-1.0, 2.0)).clamp(1.0, 99.0);
            let total20 = (sizes[i] * rng.uniform_range(0.9, 1.2)).round();
            relation
                .push_row(vec![
                    state.clone(),
                    county.clone(),
                    Value::float(share20),
                    Value::float(total20),
                ])
                .expect("arity");
            share_2016.insert(county.clone(), share_2016_vec[i].clamp(1.0, 99.0));
            totals_2016.insert(county.clone(), sizes[i].round());
        }
        VoteDataset {
            schema,
            relation: Arc::new(relation),
            share_2016,
            totals_2016,
        }
    }

    /// Inject missing records: halve `total_votes` for the given counties
    /// (the Figure 18h/i experiment).
    pub fn with_missing_totals(&self, counties: &[Value]) -> Arc<Relation> {
        let mut out = (*self.relation).clone();
        let county = self.schema.attr("county").unwrap();
        let total = self.schema.attr("total_votes").unwrap();
        for r in 0..out.len() {
            if counties.contains(out.value(r, county)) {
                let v = out.value(r, total).as_f64_or_zero();
                out.set_value(r, total, Value::float((v * 0.5).round()));
            }
        }
        Arc::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::pearson;

    #[test]
    fn generates_one_row_per_county() {
        let config = VoteConfig::default();
        let data = VoteDataset::generate(config);
        assert_eq!(
            data.relation.len(),
            config.states * config.counties_per_state
        );
        assert_eq!(data.share_2016.len(), data.relation.len());
        assert_eq!(data.totals_2016.len(), data.relation.len());
    }

    #[test]
    fn year_to_year_share_is_strongly_correlated() {
        let data = VoteDataset::generate(VoteConfig::default());
        let county = data.schema.attr("county").unwrap();
        let share = data.schema.attr("share_2020").unwrap();
        let mut s20 = Vec::new();
        let mut s16 = Vec::new();
        for r in 0..data.relation.len() {
            s20.push(data.relation.value(r, share).as_f64_or_zero());
            s16.push(data.share_2016[data.relation.value(r, county)]);
        }
        let r = pearson(&s20, &s16);
        assert!(r > 0.8, "correlation {r}");
    }

    #[test]
    fn missing_totals_halves_selected_counties_only() {
        let data = VoteDataset::generate(VoteConfig::default());
        let county_attr = data.schema.attr("county").unwrap();
        let total_attr = data.schema.attr("total_votes").unwrap();
        let victim = data.relation.value(0, county_attr).clone();
        let corrupted = data.with_missing_totals(std::slice::from_ref(&victim));
        let before = data.relation.value(0, total_attr).as_f64_or_zero();
        let after = corrupted.value(0, total_attr).as_f64_or_zero();
        assert!((after - (before * 0.5).round()).abs() < 1e-9);
        // another county untouched
        let before1 = data.relation.value(1, total_attr).as_f64_or_zero();
        let after1 = corrupted.value(1, total_attr).as_f64_or_zero();
        assert_eq!(before1, after1);
    }
}
