//! Simulated North-Carolina absentee-ballot workload (Section 5.1.4,
//! Figure 10).
//!
//! The runtime experiment only depends on the hierarchy shape: 4 single-level
//! hierarchies — county (100 values), party (6), week (53), gender (3) — and
//! ~179K rows. This module generates a relation with exactly those
//! cardinalities (scaled down by default so tests stay fast; the benchmark
//! harness uses the full scale).

use crate::rng::SimRng;
use reptile_relational::{Relation, Schema, Value};
use std::sync::Arc;

/// Configuration of the simulated absentee dataset.
#[derive(Debug, Clone, Copy)]
pub struct AbsenteeConfig {
    /// Number of counties.
    pub counties: usize,
    /// Number of parties.
    pub parties: usize,
    /// Number of weeks.
    pub weeks: usize,
    /// Number of gender categories.
    pub genders: usize,
    /// Total number of ballot rows to generate.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl AbsenteeConfig {
    /// The paper's full-scale shape (179K rows).
    pub fn paper_scale() -> Self {
        AbsenteeConfig {
            counties: 100,
            parties: 6,
            weeks: 53,
            genders: 3,
            rows: 179_000,
            seed: 20,
        }
    }

    /// A reduced shape used by unit/integration tests.
    pub fn test_scale() -> Self {
        AbsenteeConfig {
            counties: 12,
            parties: 4,
            weeks: 8,
            genders: 3,
            rows: 4_000,
            seed: 20,
        }
    }
}

/// Generate the simulated absentee relation. Schema: four single-attribute
/// hierarchies (`county`, `party`, `week`, `gender`) and a `ballots` measure
/// of 1 per row (so COUNT complaints mirror the paper's setup).
pub fn generate(config: AbsenteeConfig) -> (Arc<Schema>, Arc<Relation>) {
    let mut rng = SimRng::seed_from_u64(config.seed);
    let schema = Arc::new(
        Schema::builder()
            .hierarchy("county", ["county"])
            .hierarchy("party", ["party"])
            .hierarchy("week", ["week"])
            .hierarchy("gender", ["gender"])
            .measure("ballots")
            .build()
            .unwrap(),
    );
    let mut relation = Relation::empty(schema.clone());
    // skewed county sizes, mild weekly trend
    let county_weight: Vec<f64> = (0..config.counties)
        .map(|_| rng.uniform_range(0.2, 3.0))
        .collect();
    let total_weight: f64 = county_weight.iter().sum();
    for (c, w) in county_weight.iter().enumerate() {
        let county_rows = ((w / total_weight) * config.rows as f64).round() as usize;
        for _ in 0..county_rows {
            let party = rng.below(config.parties);
            let week = rng.below(config.weeks);
            let gender = rng.below(config.genders);
            relation
                .push_row(vec![
                    Value::str(format!("county{c:03}")),
                    Value::str(format!("party{party}")),
                    Value::int(week as i64),
                    Value::str(format!("gender{gender}")),
                    Value::float(1.0),
                ])
                .expect("arity");
        }
    }
    (schema, Arc::new(relation))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_match_configuration() {
        let config = AbsenteeConfig::test_scale();
        let (schema, rel) = generate(config);
        assert_eq!(schema.hierarchies().len(), 4);
        assert!(rel.len() > config.rows / 2 && rel.len() < config.rows * 2);
        assert_eq!(
            rel.distinct(schema.attr("county").unwrap()).len(),
            config.counties
        );
        assert!(rel.distinct(schema.attr("party").unwrap()).len() <= config.parties);
        assert!(rel.distinct(schema.attr("week").unwrap()).len() <= config.weeks);
        assert_eq!(
            rel.distinct(schema.attr("gender").unwrap()).len(),
            config.genders
        );
    }

    #[test]
    fn paper_scale_matches_documented_shape() {
        let config = AbsenteeConfig::paper_scale();
        assert_eq!(config.counties, 100);
        assert_eq!(config.parties, 6);
        assert_eq!(config.weeks, 53);
        assert_eq!(config.genders, 3);
        assert_eq!(config.rows, 179_000);
    }
}
