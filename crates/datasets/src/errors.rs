//! Group-wise error injection (Section 5.2.1).
//!
//! The accuracy experiments corrupt one (or several) groups with the error
//! classes Reptile is designed to find: missing records, duplicated records,
//! and systematic value drift (all measure values shifted up or down). The
//! injectors operate on a [`Relation`] and record the injected ground truth so
//! explanation accuracy can be scored.

use crate::rng::SimRng;
use reptile_relational::{AttrId, Relation, Value};

/// The class of group-wise error injected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorKind {
    /// Delete a fraction of the group's rows (default one half).
    MissingRecords,
    /// Duplicate a fraction of the group's rows (default one half).
    DuplicateRecords,
    /// Add `delta` to every measure value in the group (systematic drift up).
    IncreaseValues(f64),
    /// Subtract `delta` from every measure value in the group.
    DecreaseValues(f64),
}

impl ErrorKind {
    /// Short human readable label (used in experiment reports).
    pub fn label(&self) -> String {
        match self {
            ErrorKind::MissingRecords => "Missing".to_string(),
            ErrorKind::DuplicateRecords => "Dup".to_string(),
            ErrorKind::IncreaseValues(d) => format!("Increase({d})"),
            ErrorKind::DecreaseValues(d) => format!("Decrease({d})"),
        }
    }
}

/// A recorded injected error: which group was corrupted and how.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedError {
    /// Attribute identifying the corrupted group.
    pub attr: AttrId,
    /// Group value that was corrupted.
    pub group: Value,
    /// The error class.
    pub kind: ErrorKind,
    /// Whether this error is one the complaint should surface (`false` for
    /// the decoy / false-positive corruptions of the ablation study).
    pub is_target: bool,
}

/// Apply `kind` to the group `attr = group` of `relation`, returning the
/// corrupted relation. Row-subset choices use `rng`.
pub fn inject(
    relation: &Relation,
    attr: AttrId,
    group: &Value,
    measure: AttrId,
    kind: ErrorKind,
    rng: &mut SimRng,
) -> Relation {
    let group_rows: Vec<usize> = relation.filter_indices(|r| relation.value(r, attr) == group);
    match kind {
        ErrorKind::MissingRecords => {
            let drop = rng.choose_indices(group_rows.len(), group_rows.len() / 2);
            let drop_set: Vec<usize> = drop.iter().map(|i| group_rows[*i]).collect();
            let keep: Vec<usize> = (0..relation.len())
                .filter(|r| !drop_set.contains(r))
                .collect();
            relation.take(&keep)
        }
        ErrorKind::DuplicateRecords => {
            let dup = rng.choose_indices(group_rows.len(), group_rows.len() / 2);
            let mut out = relation.clone();
            for i in dup {
                let row = relation.row(group_rows[i]);
                out.push_row(row).expect("same arity");
            }
            out
        }
        ErrorKind::IncreaseValues(delta) | ErrorKind::DecreaseValues(delta) => {
            let sign = if matches!(kind, ErrorKind::IncreaseValues(_)) {
                1.0
            } else {
                -1.0
            };
            let mut out = relation.clone();
            for r in group_rows {
                let v = relation.value(r, measure).as_f64().unwrap_or(0.0);
                out.set_value(r, measure, Value::float(v + sign * delta));
            }
            out
        }
    }
}

/// Apply several injections in sequence (each on the output of the previous).
pub fn inject_all(
    relation: &Relation,
    measure: AttrId,
    errors: &[InjectedError],
    rng: &mut SimRng,
) -> Relation {
    let mut current = relation.clone();
    for e in errors {
        current = inject(&current, e.attr, &e.group, measure, e.kind, rng);
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use reptile_relational::{Predicate, Schema, View};
    use std::sync::Arc;

    fn relation() -> Relation {
        let schema = Arc::new(
            Schema::builder()
                .hierarchy("dim", ["g"])
                .measure("m")
                .build()
                .unwrap(),
        );
        let mut b = Relation::builder(schema);
        for g in 0..3 {
            for i in 0..10 {
                b = b
                    .row([Value::str(format!("g{g}")), Value::float(100.0 + i as f64)])
                    .unwrap();
            }
        }
        b.build()
    }

    fn group_stats(rel: &Relation, g: &str) -> (f64, f64) {
        let s = rel.schema().clone();
        let view = View::compute(
            Arc::new(rel.clone()),
            Predicate::all(),
            vec![s.attr("g").unwrap()],
            s.attr("m").unwrap(),
            &reptile_relational::Exec::Serial,
        )
        .unwrap();
        let key = reptile_relational::GroupKey(vec![Value::str(g)]);
        let agg = view.group(&key).unwrap();
        (agg.count(), agg.mean())
    }

    #[test]
    fn missing_records_halves_the_group() {
        let rel = relation();
        let mut rng = SimRng::seed_from_u64(1);
        let attr = rel.schema().attr("g").unwrap();
        let measure = rel.schema().attr("m").unwrap();
        let corrupted = inject(
            &rel,
            attr,
            &Value::str("g1"),
            measure,
            ErrorKind::MissingRecords,
            &mut rng,
        );
        assert_eq!(corrupted.len(), 25);
        let (count, _) = group_stats(&corrupted, "g1");
        assert_eq!(count, 5.0);
        let (other, _) = group_stats(&corrupted, "g0");
        assert_eq!(other, 10.0);
    }

    #[test]
    fn duplicate_records_grow_the_group() {
        let rel = relation();
        let mut rng = SimRng::seed_from_u64(2);
        let attr = rel.schema().attr("g").unwrap();
        let measure = rel.schema().attr("m").unwrap();
        let corrupted = inject(
            &rel,
            attr,
            &Value::str("g2"),
            measure,
            ErrorKind::DuplicateRecords,
            &mut rng,
        );
        assert_eq!(corrupted.len(), 35);
        let (count, _) = group_stats(&corrupted, "g2");
        assert_eq!(count, 15.0);
    }

    #[test]
    fn drift_shifts_only_the_target_group_mean() {
        let rel = relation();
        let mut rng = SimRng::seed_from_u64(3);
        let attr = rel.schema().attr("g").unwrap();
        let measure = rel.schema().attr("m").unwrap();
        let (_, before) = group_stats(&rel, "g0");
        let corrupted = inject(
            &rel,
            attr,
            &Value::str("g0"),
            measure,
            ErrorKind::IncreaseValues(5.0),
            &mut rng,
        );
        let (count, after) = group_stats(&corrupted, "g0");
        assert_eq!(count, 10.0);
        assert!((after - before - 5.0).abs() < 1e-9);
        let (_, other) = group_stats(&corrupted, "g1");
        let (_, other_before) = group_stats(&rel, "g1");
        assert_eq!(other, other_before);
        let decreased = inject(
            &rel,
            attr,
            &Value::str("g0"),
            measure,
            ErrorKind::DecreaseValues(5.0),
            &mut rng,
        );
        let (_, dec) = group_stats(&decreased, "g0");
        assert!((before - dec - 5.0).abs() < 1e-9);
    }

    #[test]
    fn inject_all_applies_sequentially() {
        let rel = relation();
        let mut rng = SimRng::seed_from_u64(4);
        let attr = rel.schema().attr("g").unwrap();
        let measure = rel.schema().attr("m").unwrap();
        let errors = vec![
            InjectedError {
                attr,
                group: Value::str("g0"),
                kind: ErrorKind::MissingRecords,
                is_target: true,
            },
            InjectedError {
                attr,
                group: Value::str("g1"),
                kind: ErrorKind::IncreaseValues(3.0),
                is_target: false,
            },
        ];
        let corrupted = inject_all(&rel, measure, &errors, &mut rng);
        assert_eq!(corrupted.len(), 25);
        let (_, g1_mean) = group_stats(&corrupted, "g1");
        let (_, g1_before) = group_stats(&rel, "g1");
        assert!((g1_mean - g1_before - 3.0).abs() < 1e-9);
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(ErrorKind::MissingRecords.label(), "Missing");
        assert_eq!(ErrorKind::DuplicateRecords.label(), "Dup");
        assert!(ErrorKind::IncreaseValues(5.0).label().contains('5'));
    }
}
