//! Wide synthetic panel for the multi-core scaling experiments.
//!
//! The sharded execution backend parallelises the *factorised* hot path —
//! encoded factor builds, the aggregate batch, the cluster partition and
//! the EM fit's per-cluster operators — so the workload that shows scaling
//! must be wide where those paths are hot: many distinct leaf paths (wide
//! hierarchies, so factor encode/aggregate scans dominate) and many
//! clusters (so the per-iteration EM operators dominate the fit). That is
//! exactly the shallow-and-wide shape real hierarchies take (countries →
//! districts → villages, days × geography), which is why the
//! partition/merge decomposition pays off.
//!
//! Used by `benches/sharding.rs` (speedup vs the serial encoded path, with
//! the CI smoke gate) and available to examples via `--shards N`.

use crate::rng::SimRng;
use reptile_relational::{AggregateKind, GroupKey, Predicate, Relation, Schema, Value, View};
use std::sync::Arc;

/// Shape of the scaling panel.
#[derive(Debug, Clone, Copy)]
pub struct ScalingConfig {
    /// Number of days in the time hierarchy.
    pub days: usize,
    /// Number of districts (each a cluster parent when drilling to village).
    pub districts: usize,
    /// Villages per district (the wide leaf level).
    pub villages_per_district: usize,
    /// RNG seed for the measure noise.
    pub seed: u64,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            days: 6,
            districts: 40,
            villages_per_district: 80,
            seed: 7,
        }
    }
}

impl ScalingConfig {
    /// A scaled-down shape for smoke runs — still wide enough that one
    /// scatter's work comfortably dominates the shard pool's per-scatter
    /// dispatch latency, so the CI gate measures scaling, not wake-up cost.
    pub fn smoke() -> Self {
        ScalingConfig {
            days: 5,
            districts: 24,
            villages_per_district: 48,
            seed: 7,
        }
    }

    /// Total rows of the panel (one per day × village).
    pub fn rows(&self) -> usize {
        self.days * self.districts * self.villages_per_district
    }
}

/// A generated scaling panel plus the views and complaint the benchmarks
/// pose against it.
#[derive(Debug)]
pub struct ScalingWorkload {
    /// Shared schema: `geo = district -> village`, `time = day`, measure `m`.
    pub schema: Arc<Schema>,
    /// The panel relation (one row per day × village).
    pub relation: Arc<Relation>,
    /// The analyst's complaint view: mean `m` per (district, day).
    pub complaint_view: View,
    /// The drilled training view: mean `m` per (day, district, village) —
    /// the parallel-groups view whose design build and fit the sharded
    /// backend accelerates.
    pub training_view: View,
    /// A complaint against the corrupted district/day tuple.
    pub complaint_key: GroupKey,
    /// The village whose reports were corrupted (ground truth).
    pub corrupted_village: String,
}

/// Generate the scaling panel: a smooth day/district/village surface with
/// deterministic noise, plus one village whose reports collapse on the last
/// day (the tuple the benchmark complains about).
pub fn scaling_panel(config: ScalingConfig) -> ScalingWorkload {
    let schema = Arc::new(
        Schema::builder()
            .hierarchy("geo", ["district", "village"])
            .hierarchy("time", ["day"])
            .measure("m")
            .build()
            .expect("valid scaling schema"),
    );
    let mut rng = SimRng::seed_from_u64(config.seed);
    let corrupted_district = "D0000".to_string();
    let corrupted_village = "D0000-V0000".to_string();
    let bad_day = config.days as i64 - 1;
    let mut b = Relation::builder(schema.clone());
    for day in 0..config.days as i64 {
        for d in 0..config.districts {
            let district = format!("D{d:04}");
            for v in 0..config.villages_per_district {
                let village = format!("{district}-V{v:04}");
                let base = 50.0
                    + day as f64 * 1.5
                    + d as f64 * 0.25
                    + ((v * 13 + d * 7) % 23) as f64 * 0.2
                    + rng.normal(0.0, 0.5);
                let value = if village == corrupted_village && day == bad_day {
                    base - 30.0
                } else {
                    base
                };
                b = b
                    .row([
                        Value::str(district.clone()),
                        Value::str(village),
                        Value::int(day),
                        Value::float(value),
                    ])
                    .expect("row matches schema");
            }
        }
    }
    let relation = Arc::new(b.build());
    let complaint_view = View::compute(
        relation.clone(),
        Predicate::all(),
        vec![
            schema.attr("district").unwrap(),
            schema.attr("day").unwrap(),
        ],
        schema.attr("m").unwrap(),
        &reptile_relational::Exec::Serial,
    )
    .expect("complaint view");
    let training_view = View::compute(
        relation.clone(),
        Predicate::all(),
        vec![
            schema.attr("day").unwrap(),
            schema.attr("district").unwrap(),
            schema.attr("village").unwrap(),
        ],
        schema.attr("m").unwrap(),
        &reptile_relational::Exec::Serial,
    )
    .expect("training view");
    ScalingWorkload {
        schema,
        relation,
        complaint_view,
        training_view,
        complaint_key: GroupKey(vec![Value::str(corrupted_district), Value::int(bad_day)]),
        corrupted_village,
    }
}

/// The statistic the scaling complaint is posed over.
pub const SCALING_STATISTIC: AggregateKind = AggregateKind::Mean;

/// Shape of the *deep* scaling panel: a 3-level geography with **mixed
/// fanouts** (regions own different district counts, districts own
/// different village counts) crossed with a day hierarchy, carrying **two
/// measures**. The deeper tree pushes the per-hierarchy `COF` tables and
/// their shard merges beyond what the two-level panel exercises, and the
/// second measure gives the view layer two distinct aggregation columns
/// over one relation — the workload behind `benches/views.rs`.
#[derive(Debug, Clone, Copy)]
pub struct DeepScalingConfig {
    /// Number of days in the time hierarchy.
    pub days: usize,
    /// Number of regions (the coarsest geo level).
    pub regions: usize,
    /// Minimum districts per region; region `r` owns
    /// `districts_base + r % districts_spread` districts.
    pub districts_base: usize,
    /// Spread of the per-region district fanout (mixed fanout when > 1).
    pub districts_spread: usize,
    /// Minimum villages per district; district `d` (counted globally) owns
    /// `villages_base + d % villages_spread` villages.
    pub villages_base: usize,
    /// Spread of the per-district village fanout (mixed fanout when > 1).
    pub villages_spread: usize,
    /// RNG seed for the measure noise.
    pub seed: u64,
}

impl Default for DeepScalingConfig {
    fn default() -> Self {
        DeepScalingConfig {
            days: 10,
            regions: 12,
            districts_base: 10,
            districts_spread: 9,
            villages_base: 30,
            villages_spread: 21,
            seed: 11,
        }
    }
}

impl DeepScalingConfig {
    /// A scaled-down shape for smoke runs: still deep (3 geo levels) and
    /// mixed-fanout, small enough for a CI gate iteration.
    pub fn smoke() -> Self {
        DeepScalingConfig {
            days: 6,
            regions: 6,
            districts_base: 5,
            districts_spread: 4,
            villages_base: 12,
            villages_spread: 9,
            seed: 11,
        }
    }
}

/// A generated deep panel plus the views and complaint the benchmarks pose
/// against it.
#[derive(Debug)]
pub struct DeepScalingWorkload {
    /// Shared schema: `geo = region -> district -> village`, `time = day`,
    /// measures `m` and `m2`.
    pub schema: Arc<Schema>,
    /// The panel relation (one row per day × village).
    pub relation: Arc<Relation>,
    /// The analyst's complaint view: mean `m` per region — **both**
    /// hierarchies are still drillable from here (geo to district, time to
    /// day), so a recommendation over it evaluates two candidate
    /// hierarchies (concurrently, on a parallel engine).
    pub complaint_view: View,
    /// The same view over the second measure `m2`.
    pub complaint_view_m2: View,
    /// The full-depth training view: mean `m` per
    /// (day, region, district, village) — the widest group-by the view
    /// sharding has to reproduce bit-exactly.
    pub training_view: View,
    /// A complaint against the corrupted region.
    pub complaint_key: GroupKey,
    /// The village whose `m` reports were corrupted (ground truth).
    pub corrupted_village: String,
}

/// Generate the deep panel: a smooth surface over a mixed-fanout 3-level
/// geography with deterministic noise on both measures, plus one village
/// whose `m` collapses on the last day.
pub fn deep_scaling_panel(config: DeepScalingConfig) -> DeepScalingWorkload {
    let schema = Arc::new(
        Schema::builder()
            .hierarchy("geo", ["region", "district", "village"])
            .hierarchy("time", ["day"])
            .measure("m")
            .measure("m2")
            .build()
            .expect("valid deep scaling schema"),
    );
    let mut rng = SimRng::seed_from_u64(config.seed);
    let corrupted_region = "R00".to_string();
    let corrupted_village = "R00-D00-V0000".to_string();
    let bad_day = config.days as i64 - 1;
    let mut b = Relation::builder(schema.clone());
    for day in 0..config.days as i64 {
        let mut global_district = 0usize;
        for r in 0..config.regions {
            let region = format!("R{r:02}");
            let districts = config.districts_base + r % config.districts_spread.max(1);
            for d in 0..districts {
                let district = format!("{region}-D{d:02}");
                let villages =
                    config.villages_base + global_district % config.villages_spread.max(1);
                global_district += 1;
                for v in 0..villages {
                    let village = format!("{district}-V{v:04}");
                    let base = 40.0
                        + day as f64 * 1.2
                        + r as f64 * 0.8
                        + d as f64 * 0.3
                        + ((v * 11 + d * 5 + r * 3) % 19) as f64 * 0.25
                        + rng.normal(0.0, 0.4);
                    let m = if village == corrupted_village && day == bad_day {
                        base - 25.0
                    } else {
                        base
                    };
                    // The second measure follows its own smooth surface.
                    let m2 = 100.0 - day as f64 * 0.7
                        + d as f64 * 0.5
                        + ((v * 7 + r * 13) % 23) as f64 * 0.3
                        + rng.normal(0.0, 0.6);
                    b = b
                        .row([
                            Value::str(region.clone()),
                            Value::str(district.clone()),
                            Value::str(village),
                            Value::int(day),
                            Value::float(m),
                            Value::float(m2),
                        ])
                        .expect("row matches schema");
                }
            }
        }
    }
    let relation = Arc::new(b.build());
    let region = schema.attr("region").unwrap();
    let m = schema.attr("m").unwrap();
    let m2 = schema.attr("m2").unwrap();
    let complaint_view = View::compute(
        relation.clone(),
        Predicate::all(),
        vec![region],
        m,
        &reptile_relational::Exec::Serial,
    )
    .expect("complaint view");
    let complaint_view_m2 = View::compute(
        relation.clone(),
        Predicate::all(),
        vec![region],
        m2,
        &reptile_relational::Exec::Serial,
    )
    .expect("complaint view (m2)");
    let training_view = View::compute(
        relation.clone(),
        Predicate::all(),
        vec![
            schema.attr("day").unwrap(),
            region,
            schema.attr("district").unwrap(),
            schema.attr("village").unwrap(),
        ],
        m,
        &reptile_relational::Exec::Serial,
    )
    .expect("training view");
    DeepScalingWorkload {
        schema,
        relation,
        complaint_view,
        complaint_view_m2,
        training_view,
        complaint_key: GroupKey(vec![Value::str(corrupted_region)]),
        corrupted_village,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_has_configured_shape() {
        let config = ScalingConfig {
            days: 3,
            districts: 4,
            villages_per_district: 5,
            seed: 1,
        };
        let workload = scaling_panel(config);
        assert_eq!(workload.relation.len(), config.rows());
        assert_eq!(workload.complaint_view.len(), 4 * 3);
        assert_eq!(workload.training_view.len(), 3 * 4 * 5);
        // The complaint tuple exists and its group mean is depressed.
        let complained = workload
            .complaint_view
            .group(&workload.complaint_key)
            .expect("complaint tuple present");
        let other = workload
            .complaint_view
            .group(&GroupKey(vec![Value::str("D0001"), Value::int(2)]))
            .unwrap();
        assert!(complained.mean() < other.mean());
    }

    #[test]
    fn deep_panel_has_mixed_fanouts_and_two_measures() {
        let config = DeepScalingConfig::smoke();
        let workload = deep_scaling_panel(config);
        let schema = &workload.schema;
        // 3-level geo + day, two measures.
        let geo = schema.hierarchy("geo").unwrap();
        assert_eq!(geo.levels.len(), 3);
        assert_eq!(schema.measures().len(), 2);
        // Mixed fanout: district counts differ across regions, village
        // counts differ across districts.
        let region_attr = schema.attr("region").unwrap();
        let district_attr = schema.attr("district").unwrap();
        let village_attr = schema.attr("village").unwrap();
        let mut districts_of_first = std::collections::BTreeSet::new();
        let mut districts_of_second = std::collections::BTreeSet::new();
        for row in 0..workload.relation.len() {
            let region = workload.relation.value(row, region_attr);
            if region == &Value::str("R00") {
                districts_of_first.insert(workload.relation.value(row, district_attr).clone());
            } else if region == &Value::str("R01") {
                districts_of_second.insert(workload.relation.value(row, district_attr).clone());
            }
        }
        assert_ne!(districts_of_first.len(), districts_of_second.len());
        let mut villages_per_district = std::collections::BTreeMap::new();
        for row in 0..workload.relation.len() {
            villages_per_district
                .entry(workload.relation.value(row, district_attr).clone())
                .or_insert_with(std::collections::BTreeSet::new)
                .insert(workload.relation.value(row, village_attr).clone());
        }
        let counts: std::collections::BTreeSet<usize> =
            villages_per_district.values().map(|v| v.len()).collect();
        assert!(counts.len() > 1, "village fanout should vary: {counts:?}");
        // The complaint tuple exists and both hierarchies are drillable
        // from the complaint view (group-by = region only).
        workload
            .complaint_view
            .group(&workload.complaint_key)
            .expect("complaint tuple present");
        assert!(geo.next_level(workload.complaint_view.group_by()).is_some());
        assert!(schema
            .hierarchy("time")
            .unwrap()
            .next_level(workload.complaint_view.group_by())
            .is_some());
        // The m2 view reads the second measure.
        assert_eq!(
            workload.complaint_view_m2.measure(),
            schema.attr("m2").unwrap()
        );
        // The training view covers every distinct full path once.
        assert_eq!(
            workload.training_view.len(),
            villages_per_district
                .values()
                .map(|v| v.len())
                .sum::<usize>()
                * config.days
        );
    }

    #[test]
    fn corruption_is_attributable_to_the_village() {
        let workload = scaling_panel(ScalingConfig::smoke());
        let village_attr = workload.schema.attr("village").unwrap();
        let day_attr = workload.schema.attr("day").unwrap();
        let bad_day = ScalingConfig::smoke().days as i64 - 1;
        let mut bad = f64::INFINITY;
        let mut rest = f64::INFINITY;
        for row in 0..workload.relation.len() {
            if workload.relation.value(row, day_attr) != &Value::int(bad_day) {
                continue;
            }
            let m = workload
                .relation
                .numeric(row, workload.schema.attr("m").unwrap())
                .unwrap()
                .unwrap();
            if workload.relation.value(row, village_attr)
                == &Value::str(workload.corrupted_village.clone())
            {
                bad = bad.min(m);
            } else {
                rest = rest.min(m);
            }
        }
        assert!(bad < rest - 10.0, "corruption visible: {bad} vs {rest}");
    }
}
