//! Wide synthetic panel for the multi-core scaling experiments.
//!
//! The sharded execution backend parallelises the *factorised* hot path —
//! encoded factor builds, the aggregate batch, the cluster partition and
//! the EM fit's per-cluster operators — so the workload that shows scaling
//! must be wide where those paths are hot: many distinct leaf paths (wide
//! hierarchies, so factor encode/aggregate scans dominate) and many
//! clusters (so the per-iteration EM operators dominate the fit). That is
//! exactly the shallow-and-wide shape real hierarchies take (countries →
//! districts → villages, days × geography), which is why the
//! partition/merge decomposition pays off.
//!
//! Used by `benches/sharding.rs` (speedup vs the serial encoded path, with
//! the CI smoke gate) and available to examples via `--shards N`.

use crate::rng::SimRng;
use reptile_relational::{AggregateKind, GroupKey, Predicate, Relation, Schema, Value, View};
use std::sync::Arc;

/// Shape of the scaling panel.
#[derive(Debug, Clone, Copy)]
pub struct ScalingConfig {
    /// Number of days in the time hierarchy.
    pub days: usize,
    /// Number of districts (each a cluster parent when drilling to village).
    pub districts: usize,
    /// Villages per district (the wide leaf level).
    pub villages_per_district: usize,
    /// RNG seed for the measure noise.
    pub seed: u64,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            days: 6,
            districts: 40,
            villages_per_district: 80,
            seed: 7,
        }
    }
}

impl ScalingConfig {
    /// A scaled-down shape for smoke runs — still wide enough that one
    /// scatter's work comfortably dominates the shard pool's per-scatter
    /// dispatch latency, so the CI gate measures scaling, not wake-up cost.
    pub fn smoke() -> Self {
        ScalingConfig {
            days: 5,
            districts: 24,
            villages_per_district: 48,
            seed: 7,
        }
    }

    /// Total rows of the panel (one per day × village).
    pub fn rows(&self) -> usize {
        self.days * self.districts * self.villages_per_district
    }
}

/// A generated scaling panel plus the views and complaint the benchmarks
/// pose against it.
#[derive(Debug)]
pub struct ScalingWorkload {
    /// Shared schema: `geo = district -> village`, `time = day`, measure `m`.
    pub schema: Arc<Schema>,
    /// The panel relation (one row per day × village).
    pub relation: Arc<Relation>,
    /// The analyst's complaint view: mean `m` per (district, day).
    pub complaint_view: View,
    /// The drilled training view: mean `m` per (day, district, village) —
    /// the parallel-groups view whose design build and fit the sharded
    /// backend accelerates.
    pub training_view: View,
    /// A complaint against the corrupted district/day tuple.
    pub complaint_key: GroupKey,
    /// The village whose reports were corrupted (ground truth).
    pub corrupted_village: String,
}

/// Generate the scaling panel: a smooth day/district/village surface with
/// deterministic noise, plus one village whose reports collapse on the last
/// day (the tuple the benchmark complains about).
pub fn scaling_panel(config: ScalingConfig) -> ScalingWorkload {
    let schema = Arc::new(
        Schema::builder()
            .hierarchy("geo", ["district", "village"])
            .hierarchy("time", ["day"])
            .measure("m")
            .build()
            .expect("valid scaling schema"),
    );
    let mut rng = SimRng::seed_from_u64(config.seed);
    let corrupted_district = "D0000".to_string();
    let corrupted_village = "D0000-V0000".to_string();
    let bad_day = config.days as i64 - 1;
    let mut b = Relation::builder(schema.clone());
    for day in 0..config.days as i64 {
        for d in 0..config.districts {
            let district = format!("D{d:04}");
            for v in 0..config.villages_per_district {
                let village = format!("{district}-V{v:04}");
                let base = 50.0
                    + day as f64 * 1.5
                    + d as f64 * 0.25
                    + ((v * 13 + d * 7) % 23) as f64 * 0.2
                    + rng.normal(0.0, 0.5);
                let value = if village == corrupted_village && day == bad_day {
                    base - 30.0
                } else {
                    base
                };
                b = b
                    .row([
                        Value::str(district.clone()),
                        Value::str(village),
                        Value::int(day),
                        Value::float(value),
                    ])
                    .expect("row matches schema");
            }
        }
    }
    let relation = Arc::new(b.build());
    let complaint_view = View::compute(
        relation.clone(),
        Predicate::all(),
        vec![
            schema.attr("district").unwrap(),
            schema.attr("day").unwrap(),
        ],
        schema.attr("m").unwrap(),
    )
    .expect("complaint view");
    let training_view = View::compute(
        relation.clone(),
        Predicate::all(),
        vec![
            schema.attr("day").unwrap(),
            schema.attr("district").unwrap(),
            schema.attr("village").unwrap(),
        ],
        schema.attr("m").unwrap(),
    )
    .expect("training view");
    ScalingWorkload {
        schema,
        relation,
        complaint_view,
        training_view,
        complaint_key: GroupKey(vec![Value::str(corrupted_district), Value::int(bad_day)]),
        corrupted_village,
    }
}

/// The statistic the scaling complaint is posed over.
pub const SCALING_STATISTIC: AggregateKind = AggregateKind::Mean;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_has_configured_shape() {
        let config = ScalingConfig {
            days: 3,
            districts: 4,
            villages_per_district: 5,
            seed: 1,
        };
        let workload = scaling_panel(config);
        assert_eq!(workload.relation.len(), config.rows());
        assert_eq!(workload.complaint_view.len(), 4 * 3);
        assert_eq!(workload.training_view.len(), 3 * 4 * 5);
        // The complaint tuple exists and its group mean is depressed.
        let complained = workload
            .complaint_view
            .group(&workload.complaint_key)
            .expect("complaint tuple present");
        let other = workload
            .complaint_view
            .group(&GroupKey(vec![Value::str("D0001"), Value::int(2)]))
            .unwrap();
        assert!(complained.mean() < other.mean());
    }

    #[test]
    fn corruption_is_attributable_to_the_village() {
        let workload = scaling_panel(ScalingConfig::smoke());
        let village_attr = workload.schema.attr("village").unwrap();
        let day_attr = workload.schema.attr("day").unwrap();
        let bad_day = ScalingConfig::smoke().days as i64 - 1;
        let mut bad = f64::INFINITY;
        let mut rest = f64::INFINITY;
        for row in 0..workload.relation.len() {
            if workload.relation.value(row, day_attr) != &Value::int(bad_day) {
                continue;
            }
            let m = workload
                .relation
                .numeric(row, workload.schema.attr("m").unwrap())
                .unwrap()
                .unwrap();
            if workload.relation.value(row, village_attr)
                == &Value::str(workload.corrupted_village.clone())
            {
                bad = bad.min(m);
            } else {
                rest = rest.min(m);
            }
        }
        assert!(bad < rest - 10.0, "corruption visible: {bad} vs {rest}");
    }
}
