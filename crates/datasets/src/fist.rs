//! Simulated FIST drought-survey data (Sections 1, 5.4, Appendix M).
//!
//! The Columbia FIST team collects farmer-reported drought severity (1–10)
//! per village and year, cross-referenced against satellite rainfall
//! estimates. The real survey and the 22 user-study complaints are not
//! available, so this module synthesises a panel with the documented shape
//! (Region → District → Village geography crossed with Year, severity
//! inversely related to rainfall) and produces complaints from injected
//! group-level corruptions — including the documented STD failure mode where
//! two districts must be repaired together.

use crate::rng::SimRng;
use reptile_relational::{AggregateKind, Relation, Schema, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration of the simulated survey.
#[derive(Debug, Clone, Copy)]
pub struct FistConfig {
    /// Number of regions.
    pub regions: usize,
    /// Districts per region.
    pub districts_per_region: usize,
    /// Villages per district.
    pub villages_per_district: usize,
    /// Number of survey years.
    pub years: usize,
    /// Farmer reports per village and year.
    pub reports_per_village: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FistConfig {
    fn default() -> Self {
        FistConfig {
            regions: 3,
            districts_per_region: 4,
            villages_per_district: 6,
            years: 8,
            reports_per_village: 8,
            seed: 7,
        }
    }
}

/// The kind of data issue behind a simulated complaint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FistComplaintKind {
    /// One village's reports were shifted down (e.g. year confusion).
    VillageMeanLow,
    /// One village's reports were shifted up (over-reported severity).
    VillageMeanHigh,
    /// One village lost half of its reports.
    VillageMissing,
    /// Two districts shifted in opposite directions so that the region STD is
    /// inflated — the documented Appendix M failure mode.
    TwoDistrictStd,
}

/// A simulated complaint with its ground truth.
#[derive(Debug, Clone)]
pub struct FistComplaint {
    /// Identifier of the complaint.
    pub id: String,
    /// The issue class.
    pub kind: FistComplaintKind,
    /// The complained statistic.
    pub statistic: AggregateKind,
    /// The year the complaint refers to.
    pub year: i64,
    /// The district (or region for the STD case) the complaint is scoped to.
    pub scope_district: Value,
    /// Ground-truth villages (one, or the two districts' villages for the STD
    /// failure case the ground truth is the pair of districts).
    pub true_groups: Vec<Value>,
    /// Whether the complaint is "too low" (else "too high").
    pub too_low: bool,
}

/// The simulated case study.
#[derive(Debug, Clone)]
pub struct FistCaseStudy {
    /// Schema: `geo = [region, district, village]`, `time = [year]`,
    /// measure `severity`.
    pub schema: Arc<Schema>,
    /// The clean panel.
    pub clean: Arc<Relation>,
    /// Rainfall auxiliary measure per village (lower rainfall → higher
    /// severity).
    pub rainfall: BTreeMap<Value, f64>,
    /// The complaint catalogue.
    pub complaints: Vec<FistComplaint>,
}

impl FistCaseStudy {
    /// Generate the case study.
    pub fn generate(config: FistConfig) -> Self {
        let mut rng = SimRng::seed_from_u64(config.seed);
        let schema = Arc::new(
            Schema::builder()
                .hierarchy("geo", ["region", "district", "village"])
                .hierarchy("time", ["year"])
                .measure("severity")
                .build()
                .unwrap(),
        );
        let mut relation = Relation::empty(schema.clone());
        let mut rainfall = BTreeMap::new();
        let mut districts = Vec::new();
        let mut villages = Vec::new();
        for r in 0..config.regions {
            let region = Value::str(format!("Region{r}"));
            for d in 0..config.districts_per_region {
                let district = Value::str(format!("R{r}-D{d}"));
                districts.push((region.clone(), district.clone()));
                for v in 0..config.villages_per_district {
                    let village = Value::str(format!("R{r}-D{d}-V{v}"));
                    // Each village has a rainfall level; severity tracks
                    // (10 - rainfall/100) with per-year shocks.
                    let rain = rng.uniform_range(100.0, 900.0);
                    rainfall.insert(village.clone(), rain);
                    villages.push((region.clone(), district.clone(), village.clone(), rain));
                }
            }
        }
        for year in 0..config.years {
            let year_v = Value::int(1984 + year as i64);
            let year_shock = rng.normal(0.0, 0.8);
            for (region, district, village, rain) in &villages {
                let base = (10.0 - rain / 100.0).clamp(1.0, 10.0) + year_shock;
                for _ in 0..config.reports_per_village {
                    let sev = (base + rng.normal(0.0, 0.8)).clamp(1.0, 10.0);
                    relation
                        .push_row(vec![
                            region.clone(),
                            district.clone(),
                            village.clone(),
                            year_v.clone(),
                            Value::float(sev),
                        ])
                        .expect("arity");
                }
            }
        }

        // Build a complaint catalogue: a few of each class, scoped to
        // distinct (district, year) combinations.
        let mut complaints = Vec::new();
        let kinds = [
            FistComplaintKind::VillageMeanLow,
            FistComplaintKind::VillageMeanHigh,
            FistComplaintKind::VillageMissing,
        ];
        let mut cid = 0usize;
        for (i, (region, district)) in districts.iter().enumerate().take(9) {
            let kind = kinds[i % kinds.len()];
            let year = 1984 + (rng.below(config.years)) as i64;
            let village = Value::str(format!(
                "{}-V{}",
                district.as_str().unwrap(),
                rng.below(config.villages_per_district)
            ));
            let (statistic, too_low) = match kind {
                FistComplaintKind::VillageMeanLow => (AggregateKind::Mean, true),
                FistComplaintKind::VillageMeanHigh => (AggregateKind::Mean, false),
                FistComplaintKind::VillageMissing => (AggregateKind::Count, true),
                FistComplaintKind::TwoDistrictStd => (AggregateKind::Std, false),
            };
            complaints.push(FistComplaint {
                id: format!("C{cid:02}"),
                kind,
                statistic,
                year,
                scope_district: district.clone(),
                true_groups: vec![village],
                too_low,
            });
            cid += 1;
            let _ = region;
        }
        // The Appendix M failure case: two districts of one region drift in
        // opposite directions, inflating the region-level STD.
        let region0 = Value::str("Region0");
        let d_a = Value::str("R0-D0");
        let d_b = Value::str("R0-D1");
        complaints.push(FistComplaint {
            id: format!("C{cid:02}"),
            kind: FistComplaintKind::TwoDistrictStd,
            statistic: AggregateKind::Std,
            year: 1984,
            scope_district: region0,
            true_groups: vec![d_a, d_b],
            too_low: false,
        });

        FistCaseStudy {
            schema,
            clean: Arc::new(relation),
            rainfall,
            complaints,
        }
    }

    /// Corrupted relation for one complaint.
    pub fn corrupted_relation(&self, complaint: &FistComplaint, seed: u64) -> Arc<Relation> {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut out = (*self.clean).clone();
        let village = self.schema.attr("village").unwrap();
        let district = self.schema.attr("district").unwrap();
        let year = self.schema.attr("year").unwrap();
        let severity = self.schema.attr("severity").unwrap();
        let year_v = Value::int(complaint.year);
        let shift = |rel: &mut Relation, attr, value: &Value, delta: f64| {
            for r in 0..rel.len() {
                if rel.value(r, attr) == value && rel.value(r, year) == &year_v {
                    let v = rel.value(r, severity).as_f64_or_zero();
                    rel.set_value(r, severity, Value::float((v + delta).clamp(1.0, 10.0)));
                }
            }
        };
        match complaint.kind {
            FistComplaintKind::VillageMeanLow => {
                shift(&mut out, village, &complaint.true_groups[0], -4.0);
            }
            FistComplaintKind::VillageMeanHigh => {
                shift(&mut out, village, &complaint.true_groups[0], 4.0);
            }
            FistComplaintKind::VillageMissing => {
                let rows: Vec<usize> = out.filter_indices(|r| {
                    out.value(r, village) == &complaint.true_groups[0]
                        && out.value(r, year) == &year_v
                });
                let drop = rng.choose_indices(rows.len(), rows.len() / 2);
                let drop_set: Vec<usize> = drop.iter().map(|i| rows[*i]).collect();
                let keep: Vec<usize> = (0..out.len()).filter(|r| !drop_set.contains(r)).collect();
                out = out.take(&keep);
            }
            FistComplaintKind::TwoDistrictStd => {
                shift(&mut out, district, &complaint.true_groups[0], 3.0);
                shift(&mut out, district, &complaint.true_groups[1], -3.0);
            }
        }
        Arc::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reptile_relational::{GroupKey, Predicate, View};

    #[test]
    fn panel_shape_and_rainfall_correlation() {
        let config = FistConfig::default();
        let cs = FistCaseStudy::generate(config);
        let expected_rows = config.regions
            * config.districts_per_region
            * config.villages_per_district
            * config.years
            * config.reports_per_village;
        assert_eq!(cs.clean.len(), expected_rows);
        assert_eq!(
            cs.rainfall.len(),
            config.regions * config.districts_per_region * config.villages_per_district
        );
        // severity and rainfall should be negatively correlated across villages
        let s = cs.schema.clone();
        let view = View::compute(
            cs.clean.clone(),
            Predicate::all(),
            vec![s.attr("village").unwrap()],
            s.attr("severity").unwrap(),
            &reptile_relational::Exec::Serial,
        )
        .unwrap();
        let mut sev = Vec::new();
        let mut rain = Vec::new();
        for (key, agg) in view.groups() {
            sev.push(agg.mean());
            rain.push(cs.rainfall[&key.values()[0]]);
        }
        let r = crate::rng::pearson(&sev, &rain);
        assert!(r < -0.8, "correlation {r}");
    }

    #[test]
    fn complaints_cover_all_kinds() {
        let cs = FistCaseStudy::generate(FistConfig::default());
        assert!(cs.complaints.len() >= 10);
        for kind in [
            FistComplaintKind::VillageMeanLow,
            FistComplaintKind::VillageMeanHigh,
            FistComplaintKind::VillageMissing,
            FistComplaintKind::TwoDistrictStd,
        ] {
            assert!(cs.complaints.iter().any(|c| c.kind == kind), "{kind:?}");
        }
    }

    #[test]
    fn corruption_shifts_the_target_village() {
        let cs = FistCaseStudy::generate(FistConfig::default());
        let complaint = cs
            .complaints
            .iter()
            .find(|c| c.kind == FistComplaintKind::VillageMeanLow)
            .unwrap();
        let corrupted = cs.corrupted_relation(complaint, 1);
        let s = cs.schema.clone();
        let year_pred = Predicate::eq(s.attr("year").unwrap(), Value::int(complaint.year));
        let mean_of = |rel: &Arc<Relation>| -> f64 {
            let view = View::compute(
                rel.clone(),
                year_pred.clone(),
                vec![s.attr("village").unwrap()],
                s.attr("severity").unwrap(),
                &reptile_relational::Exec::Serial,
            )
            .unwrap();
            view.group(&GroupKey(vec![complaint.true_groups[0].clone()]))
                .unwrap()
                .mean()
        };
        assert!(mean_of(&corrupted) < mean_of(&cs.clean) - 1.0);
    }

    #[test]
    fn two_district_std_case_inflates_region_std() {
        let cs = FistCaseStudy::generate(FistConfig::default());
        let complaint = cs
            .complaints
            .iter()
            .find(|c| c.kind == FistComplaintKind::TwoDistrictStd)
            .unwrap();
        let corrupted = cs.corrupted_relation(complaint, 2);
        let s = cs.schema.clone();
        let std_of = |rel: &Arc<Relation>| -> f64 {
            let view = View::compute(
                rel.clone(),
                Predicate::eq(s.attr("year").unwrap(), Value::int(complaint.year)),
                vec![s.attr("region").unwrap()],
                s.attr("severity").unwrap(),
                &reptile_relational::Exec::Serial,
            )
            .unwrap();
            view.group(&GroupKey(vec![Value::str("Region0")]))
                .unwrap()
                .std()
        };
        assert!(std_of(&corrupted) > std_of(&cs.clean) + 0.3);
    }
}
