//! Simulated COMPAS recidivism workload (Section 5.1.4, Figure 10).
//!
//! The runtime experiment depends on the hierarchy shape only: a three-level
//! time hierarchy (year, month, day — 704 distinct days in the original), and
//! single-level age-range (3), race (6) and charge-degree (3) hierarchies over
//! ~60,843 rows.

use crate::rng::SimRng;
use reptile_relational::{Relation, Schema, Value};
use std::sync::Arc;

/// Configuration of the simulated COMPAS dataset.
#[derive(Debug, Clone, Copy)]
pub struct CompasConfig {
    /// Number of years in the time hierarchy.
    pub years: usize,
    /// Months per year.
    pub months: usize,
    /// Days per month.
    pub days: usize,
    /// Number of age ranges.
    pub age_ranges: usize,
    /// Number of race categories.
    pub races: usize,
    /// Number of charge degrees.
    pub degrees: usize,
    /// Total number of rows.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl CompasConfig {
    /// The paper's full-scale shape (60,843 rows, ~704 days).
    pub fn paper_scale() -> Self {
        CompasConfig {
            years: 2,
            months: 12,
            days: 30,
            age_ranges: 3,
            races: 6,
            degrees: 3,
            rows: 60_843,
            seed: 21,
        }
    }

    /// Reduced shape for tests.
    pub fn test_scale() -> Self {
        CompasConfig {
            years: 2,
            months: 4,
            days: 7,
            age_ranges: 3,
            races: 4,
            degrees: 3,
            rows: 3_000,
            seed: 21,
        }
    }
}

/// Generate the simulated COMPAS relation. Schema: hierarchy
/// `time = [year, month, day]` plus single-attribute hierarchies `age`,
/// `race`, `degree`, and a `score` measure (decile risk score 1..10).
pub fn generate(config: CompasConfig) -> (Arc<Schema>, Arc<Relation>) {
    let mut rng = SimRng::seed_from_u64(config.seed);
    let schema = Arc::new(
        Schema::builder()
            .hierarchy("time", ["year", "month", "day"])
            .hierarchy("age", ["age_range"])
            .hierarchy("race", ["race"])
            .hierarchy("degree", ["charge_degree"])
            .measure("score")
            .build()
            .unwrap(),
    );
    let mut relation = Relation::empty(schema.clone());
    for _ in 0..config.rows {
        let year = 2013 + rng.below(config.years) as i64;
        let month = 1 + rng.below(config.months) as i64;
        let day = 1 + rng.below(config.days) as i64;
        let age = rng.below(config.age_ranges);
        let race = rng.below(config.races);
        let degree = rng.below(config.degrees);
        let score = (rng.normal(5.0, 2.5)).clamp(1.0, 10.0).round();
        relation
            .push_row(vec![
                Value::int(year),
                // encode month/day with the year prefix so the time hierarchy
                // satisfies its functional dependencies (day -> month -> year)
                Value::str(format!("{year}-{month:02}")),
                Value::str(format!("{year}-{month:02}-{day:02}")),
                Value::str(format!("age{age}")),
                Value::str(format!("race{race}")),
                Value::str(format!("degree{degree}")),
                Value::float(score),
            ])
            .expect("arity");
    }
    (schema, Arc::new(relation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reptile_relational::hierarchy::validate_hierarchy;

    #[test]
    fn generated_relation_matches_shape_and_fds() {
        let config = CompasConfig::test_scale();
        let (schema, rel) = generate(config);
        assert_eq!(rel.len(), config.rows);
        // the time hierarchy satisfies day -> month -> year
        let time = schema.hierarchy("time").unwrap();
        assert!(validate_hierarchy(&rel, time).is_ok());
        let days = rel.distinct(schema.attr("day").unwrap()).len();
        assert!(days <= config.years * config.months * config.days);
        assert!(days > config.days);
        // score stays within the decile range
        let score_attr = schema.attr("score").unwrap();
        for r in 0..rel.len() {
            let s = rel.value(r, score_attr).as_f64_or_zero();
            assert!((1.0..=10.0).contains(&s));
        }
    }

    #[test]
    fn paper_scale_matches_documented_counts() {
        let config = CompasConfig::paper_scale();
        assert_eq!(config.rows, 60_843);
        assert_eq!(config.races, 6);
        assert_eq!(config.age_ranges, 3);
        assert_eq!(config.degrees, 3);
        // ~704 unique days
        assert!(config.years * config.months * config.days >= 700);
    }
}
