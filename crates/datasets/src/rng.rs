//! Deterministic random number utilities for the simulators.
//!
//! A self-contained splitmix64-based generator with the small set of
//! distributions the workload generators need (uniform, normal via
//! Box–Muller, integer ranges), so the crate has no dependencies outside the
//! standard library.

/// Seeded random generator used by every simulator (splitmix64 core).
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Create from a seed (all workloads are reproducible given their seed).
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Next raw 64-bit output (splitmix64 step).
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Standard normal sample (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.uniform().max(1e-12);
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.standard_normal()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Choose `k` distinct indices from `0..n`.
    pub fn choose_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k.min(n));
        idx
    }
}

/// Pearson correlation of two equally long slices.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len()) as f64;
    if n < 2.0 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn normal_has_roughly_correct_moments() {
        let mut rng = SimRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..20_000).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean = {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std = {}", var.sqrt());
    }

    #[test]
    fn below_and_choose_indices_are_in_range() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(rng.below(10) < 10);
        }
        assert_eq!(rng.below(0), 0);
        let chosen = rng.choose_indices(20, 5);
        assert_eq!(chosen.len(), 5);
        let mut sorted = chosen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        assert!(sorted.iter().all(|i| *i < 20));
        assert_eq!(rng.choose_indices(3, 10).len(), 3);
    }

    #[test]
    fn pearson_detects_perfect_and_no_correlation() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-9);
        let c: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-9);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }
}
