//! Streaming replay of the covid workload as timestamped ingest batches.
//!
//! The paper's evaluation treats the JHU panels as static snapshots; the
//! live feeds they came from are *streams* — each day appends one batch of
//! per-location reports, and corrections occasionally rewrite an earlier
//! report (a delete of the old tuple plus an insert of the fixed one, the
//! shape real JHU history rewrites take). [`CovidStream::replay`] slices a
//! simulated [`CovidCaseStudy`] panel into exactly that: a *warm* panel of
//! the first `warmup_days` days to register with the engine, followed by one
//! [`IngestBatch`] per remaining day.
//!
//! Each daily batch adds a new `day` path to the time hierarchy and (almost
//! always) no path to the geo hierarchy — the asymmetry the engine's
//! delta-maintained encoded aggregates exploit: geo factor state survives
//! every batch untouched, and the time factor is patched forward by one
//! path instead of rebuilt. `benches/streaming.rs` measures precisely this
//! against a cold per-batch rebuild.

use crate::covid::CovidCaseStudy;
use reptile_relational::{IngestBatch, Relation, Value};
use std::sync::Arc;

/// Configuration of a covid stream replay.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Days included in the initial warm panel (clamped to at least 1 so
    /// the registered relation is never empty).
    pub warmup_days: usize,
    /// Emit a correction every `correction_every`-th batch (0 disables):
    /// the previous day's first report is deleted and re-inserted 10%
    /// higher, exercising the delete path of ingest.
    pub correction_every: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            warmup_days: 14,
            correction_every: 7,
        }
    }
}

/// One timestamped batch of the stream.
#[derive(Debug, Clone)]
pub struct StreamBatch {
    /// The day this batch lands (its inserts all carry this `day` value).
    pub day: i64,
    /// The row changes: the day's reports, plus an occasional correction
    /// rewriting a report of the previous day.
    pub batch: IngestBatch,
}

/// A covid panel replayed as a stream: the warm initial panel plus the
/// ordered daily batches that grow it to the full case study.
#[derive(Debug, Clone)]
pub struct CovidStream {
    /// The panel after `warmup_days` days — what gets registered with the
    /// engine before the stream starts.
    pub warm: Arc<Relation>,
    /// The remaining days as ordered ingest batches.
    pub batches: Vec<StreamBatch>,
}

impl CovidStream {
    /// Slice `case_study`'s clean panel into a warm prefix and per-day
    /// batches according to `config`.
    pub fn replay(case_study: &CovidCaseStudy, config: StreamConfig) -> CovidStream {
        let schema = &case_study.schema;
        let relation = &case_study.clean;
        let day_attr = schema.attr("day").expect("covid schema has a day level");
        let days = case_study.config().days as i64;
        let warmup = config.warmup_days.max(1) as i64;

        let rows_of_day = |day: i64| -> Vec<Vec<Value>> {
            relation
                .filter_indices(|r| relation.value(r, day_attr) == &Value::int(day))
                .into_iter()
                .map(|r| relation.row(r))
                .collect()
        };

        let mut warm = Relation::empty(schema.clone());
        for day in 0..warmup.min(days) {
            for row in rows_of_day(day) {
                warm.push_row(row).expect("row matches schema");
            }
        }

        let mut batches = Vec::new();
        for day in warmup..days {
            let mut batch = IngestBatch::new();
            let mut corrected_rows = Vec::new();
            let is_correction_day = config.correction_every > 0
                && (day - warmup) % config.correction_every as i64
                    == config.correction_every as i64 - 1;
            if is_correction_day {
                // Rewrite the previous day's first report 10% higher.
                if let Some(old) = rows_of_day(day - 1).into_iter().next() {
                    let mut fixed = old.clone();
                    let measure = schema.attr("confirmed").expect("covid measure");
                    let v = fixed[measure.index()].as_f64_or_zero();
                    fixed[measure.index()] = Value::float((v * 1.1).round());
                    batch.push_delete(old);
                    corrected_rows.push(fixed);
                }
            }
            for row in rows_of_day(day).into_iter().chain(corrected_rows) {
                batch.push_insert(row);
            }
            batches.push(StreamBatch { day, batch });
        }
        CovidStream {
            warm: Arc::new(warm),
            batches,
        }
    }

    /// Total number of row changes across all batches.
    pub fn total_changes(&self) -> usize {
        self.batches.iter().map(|b| b.batch.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covid::{CovidCaseStudy, CovidConfig};

    fn case_study() -> CovidCaseStudy {
        CovidCaseStudy::us(CovidConfig {
            locations: 4,
            sub_locations: 2,
            days: 12,
            seed: 7,
        })
    }

    #[test]
    fn replay_partitions_the_panel_by_day() {
        let cs = case_study();
        let stream = CovidStream::replay(
            &cs,
            StreamConfig {
                warmup_days: 5,
                correction_every: 0,
            },
        );
        assert_eq!(stream.warm.len(), 4 * 2 * 5);
        assert_eq!(stream.batches.len(), 12 - 5);
        // Applying every batch reproduces the full panel row count.
        let mut rel = (*stream.warm).clone();
        for sb in &stream.batches {
            assert!(sb.batch.deletes().is_empty());
            rel = rel.apply(&sb.batch).unwrap();
        }
        assert_eq!(rel.len(), cs.clean.len());
        assert_eq!(stream.total_changes(), cs.clean.len() - stream.warm.len());
    }

    #[test]
    fn corrections_delete_and_reinsert() {
        let cs = case_study();
        let stream = CovidStream::replay(
            &cs,
            StreamConfig {
                warmup_days: 5,
                correction_every: 3,
            },
        );
        let with_deletes: Vec<&StreamBatch> = stream
            .batches
            .iter()
            .filter(|b| !b.batch.deletes().is_empty())
            .collect();
        assert!(!with_deletes.is_empty());
        for sb in &with_deletes {
            assert_eq!(sb.batch.deletes().len(), 1);
            // the correction re-inserts a row for the *previous* day
            let day_attr = cs.schema.attr("day").unwrap();
            assert!(sb
                .batch
                .inserts()
                .iter()
                .any(|row| row[day_attr.index()] == Value::int(sb.day - 1)));
        }
        // Deletes still apply cleanly in sequence.
        let mut rel = (*stream.warm).clone();
        for sb in &stream.batches {
            rel = rel.apply(&sb.batch).unwrap();
        }
        assert_eq!(rel.len(), cs.clean.len());
    }

    #[test]
    fn warmup_is_clamped_to_one_day() {
        let cs = case_study();
        let stream = CovidStream::replay(
            &cs,
            StreamConfig {
                warmup_days: 0,
                correction_every: 0,
            },
        );
        assert_eq!(stream.warm.len(), 4 * 2);
        assert_eq!(stream.batches.len(), 11);
    }
}
