//! Workload generators for the Reptile reproduction.
//!
//! **Paper map** (Huang & Wu, *Reptile*, SIGMOD 2022): the evaluation
//! workloads of **Section 5** — synthetic hierarchies (§5.1–5.2), the
//! covid/FIST/absentee/COMPAS/election case studies (§5.3, Tables 1–2),
//! plus a streaming replay of the covid panel ([`stream`]) feeding the
//! engine's delta-maintained ingest (the maintenance direction of §4.3).
//!
//! The paper evaluates on a mix of synthetic data (Sections 5.1–5.2) and real
//! datasets (JHU COVID-19, FIST drought surveys, NC absentee ballots, COMPAS,
//! US election results). The real datasets and their documented data-quality
//! issues are not available offline, so this crate provides simulators that
//! reproduce their schemas, hierarchy shapes, cardinalities, and — crucially —
//! the error classes that the evaluation injects or exploits (missing
//! records, duplication, systematic value drift, backlogs, prevalent missing
//! sources). Every simulator records the injected ground truth so accuracy
//! can be measured exactly as in the paper.

pub mod absentee;
pub mod compas;
pub mod correlate;
pub mod covid;
pub mod errors;
pub mod fist;
pub mod hiergen;
pub mod rng;
pub mod scaling;
pub mod stream;
pub mod synthetic;
pub mod vote;

pub use errors::{ErrorKind, InjectedError};
pub use rng::SimRng;
pub use scaling::{scaling_panel, ScalingConfig, ScalingWorkload};
pub use stream::{CovidStream, StreamBatch, StreamConfig};
