//! Simulated COVID-19 case-study data (Section 5.3, Tables 1 and 2,
//! Figure 13).
//!
//! The paper uses the JHU CSSE COVID-19 panels and 30 resolved GitHub issues
//! as ground truth. Neither is available offline, so this module synthesises
//! panels with the same schema (a location hierarchy crossed with a day
//! hierarchy and a cumulative-report measure) and injects the same classes of
//! issues the paper evaluates: missing daily reports, backlogs, over-reports,
//! definition changes, typos, and *prevalent* errors (a missing source that
//! affects a location across the whole time range — the class Reptile is
//! documented to miss).

use crate::rng::SimRng;
use reptile_relational::{Relation, Schema, Value};
use std::sync::Arc;

/// The issue classes of Tables 1 and 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CovidIssueKind {
    /// A location reported (almost) nothing on one day.
    MissingReports,
    /// A backlog: day `d` under-reports, day `d+1` catches up.
    Backlog,
    /// A one-day over-report.
    OverReported,
    /// A methodology/definition change inflating one day.
    DefinitionChange,
    /// A small typo (digit-swap sized error) — usually below natural noise.
    Typo,
    /// A data source missing for the whole period (prevalent error).
    PrevalentMissingSource,
}

impl CovidIssueKind {
    /// Whether the error is prevalent (spread over the whole time range).
    pub fn is_prevalent(self) -> bool {
        matches!(self, CovidIssueKind::PrevalentMissingSource)
    }

    /// Whether the paper expects the complaint direction to be "too low".
    pub fn too_low(self) -> bool {
        matches!(
            self,
            CovidIssueKind::MissingReports
                | CovidIssueKind::Backlog
                | CovidIssueKind::PrevalentMissingSource
        )
    }
}

/// One simulated data-quality issue with its ground truth.
#[derive(Debug, Clone)]
pub struct CovidIssue {
    /// Issue identifier (mirrors the paper's per-issue rows).
    pub id: String,
    /// The class of error.
    pub kind: CovidIssueKind,
    /// Ground-truth location (value of the top-level location attribute).
    pub location: Value,
    /// Day the complaint refers to.
    pub day: i64,
    /// Whether the complaint is "total is too low" (else "too high").
    pub too_low: bool,
}

/// Configuration of the simulated panel.
#[derive(Debug, Clone, Copy)]
pub struct CovidConfig {
    /// Number of top-level locations (states / countries).
    pub locations: usize,
    /// Sub-locations per location (counties / provinces).
    pub sub_locations: usize,
    /// Number of days in the panel.
    pub days: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CovidConfig {
    fn default() -> Self {
        CovidConfig {
            locations: 20,
            sub_locations: 5,
            days: 60,
            seed: 42,
        }
    }
}

/// A simulated COVID case study: the clean panel plus an issue catalogue.
#[derive(Debug, Clone)]
pub struct CovidCaseStudy {
    /// Schema: hierarchy `geo = [location, sub_location]`, `time = [day]`,
    /// measure `confirmed` (new confirmed reports per day).
    pub schema: Arc<Schema>,
    /// The clean panel.
    pub clean: Arc<Relation>,
    /// The issues to evaluate (each evaluated on its own corrupted copy).
    pub issues: Vec<CovidIssue>,
    /// Per-location base scale (proportional to "population").
    pub scales: Vec<f64>,
    config: CovidConfig,
}

fn location_name(prefix: &str, i: usize) -> String {
    format!("{prefix}{i:03}")
}

/// Swap the first adjacent digit pair of `v` (rounded) that increases the
/// number — the classic transposition typo, in the inflating direction. Falls
/// back to a last-digit slip (+27) when every swap would deflate.
fn digit_swap_inflate(v: f64) -> f64 {
    let n = v.max(0.0).round() as u64;
    let digits: Vec<u8> = n.to_string().bytes().map(|b| b - b'0').collect();
    for i in 0..digits.len().saturating_sub(1) {
        if digits[i + 1] > digits[i] {
            let mut d = digits.clone();
            d.swap(i, i + 1);
            return d.iter().fold(0u64, |acc, &x| acc * 10 + u64::from(x)) as f64;
        }
    }
    v + 27.0
}

impl CovidCaseStudy {
    /// Build the United-States-shaped case study (16 issues, Table 1).
    pub fn us(config: CovidConfig) -> Self {
        Self::build("US-State", config, &US_ISSUE_PLAN)
    }

    /// Build the global-shaped case study (14 issues, Table 2).
    pub fn global(config: CovidConfig) -> Self {
        Self::build("Country", config, &GLOBAL_ISSUE_PLAN)
    }

    fn build(prefix: &str, config: CovidConfig, plan: &[(&str, CovidIssueKind)]) -> Self {
        let mut rng = SimRng::seed_from_u64(config.seed);
        let schema = Arc::new(
            Schema::builder()
                .hierarchy("geo", ["location", "sub_location"])
                .hierarchy("time", ["day"])
                .measure("confirmed")
                .build()
                .unwrap(),
        );
        // Epidemic-curve shaped daily reports: per-location scale times a
        // smooth wave plus a day-of-week dip plus noise. Scales are
        // log-uniform over a wide range, mirroring the heavy-tailed
        // population sizes of the real JHU panels (magnitude alone must not
        // identify the corrupted location, or the Scorpion-style baselines
        // become artificially perfect).
        let scales: Vec<f64> = (0..config.locations)
            .map(|_| rng.uniform_range(0.2f64.ln(), 50.0f64.ln()).exp())
            .collect();
        let mut relation = Relation::empty(schema.clone());
        for (li, scale) in scales.iter().enumerate() {
            let loc = Value::str(location_name(prefix, li));
            for si in 0..config.sub_locations {
                let sub = Value::str(format!("{}-{si:02}", location_name(prefix, li)));
                let sub_share = 0.5 + 0.1 * si as f64;
                for day in 0..config.days {
                    let t = day as f64 / config.days as f64;
                    let wave = 200.0 * (1.0 + (2.0 * std::f64::consts::PI * (t - 0.3)).sin());
                    let weekday_dip = if day % 7 >= 5 { 0.7 } else { 1.0 };
                    let noise = rng.normal(1.0, 0.05).max(0.5);
                    let confirmed = (scale * sub_share * wave * weekday_dip * noise).round();
                    relation
                        .push_row(vec![
                            loc.clone(),
                            sub.clone(),
                            Value::int(day as i64),
                            Value::float(confirmed.max(0.0)),
                        ])
                        .expect("arity");
                }
            }
        }
        // Assign each planned issue to a location (distinct while possible)
        // and a mid-range day.
        let mut issues = Vec::with_capacity(plan.len());
        let mut chosen = rng.choose_indices(config.locations, plan.len());
        while chosen.len() < plan.len() {
            chosen.push(rng.below(config.locations));
        }
        for ((id, kind), li) in plan.iter().zip(chosen) {
            let day = (config.days / 3 + rng.below(config.days / 2)) as i64;
            issues.push(CovidIssue {
                id: (*id).to_string(),
                kind: *kind,
                location: Value::str(location_name(prefix, li)),
                day,
                too_low: kind.too_low(),
            });
        }
        CovidCaseStudy {
            schema,
            clean: Arc::new(relation),
            issues,
            scales,
            config,
        }
    }

    /// The corrupted panel for one issue.
    pub fn corrupted_relation(&self, issue: &CovidIssue) -> Arc<Relation> {
        let mut out = (*self.clean).clone();
        let location = self.schema.attr("location").unwrap();
        let day = self.schema.attr("day").unwrap();
        let confirmed = self.schema.attr("confirmed").unwrap();
        let rows_of = |rel: &Relation, d: Option<i64>| -> Vec<usize> {
            rel.filter_indices(|r| {
                rel.value(r, location) == &issue.location
                    && d.map(|d| rel.value(r, day) == &Value::int(d))
                        .unwrap_or(true)
            })
        };
        match issue.kind {
            CovidIssueKind::MissingReports => {
                for r in rows_of(&out, Some(issue.day)) {
                    let v = out.value(r, confirmed).as_f64_or_zero();
                    out.set_value(r, confirmed, Value::float(v * 0.05));
                }
            }
            CovidIssueKind::Backlog => {
                for r in rows_of(&out, Some(issue.day)) {
                    let v = out.value(r, confirmed).as_f64_or_zero();
                    out.set_value(r, confirmed, Value::float(v * 0.1));
                }
                for r in rows_of(&out, Some(issue.day + 1)) {
                    let v = out.value(r, confirmed).as_f64_or_zero();
                    out.set_value(r, confirmed, Value::float(v * 1.9));
                }
            }
            CovidIssueKind::OverReported | CovidIssueKind::DefinitionChange => {
                for r in rows_of(&out, Some(issue.day)) {
                    let v = out.value(r, confirmed).as_f64_or_zero();
                    out.set_value(r, confirmed, Value::float(v * 2.5));
                }
            }
            CovidIssueKind::Typo => {
                // A transposed-digit error on a single sub-location: swap the
                // first adjacent digit pair that inflates the value
                // (e.g. 1325 -> 3125). Inflates the report by ~10-80% —
                // detectable by a model of the location's expectation, but
                // not enough to make the location the day's extreme.
                if let Some(&r) = rows_of(&out, Some(issue.day)).first() {
                    let v = out.value(r, confirmed).as_f64_or_zero();
                    out.set_value(r, confirmed, Value::float(digit_swap_inflate(v)));
                }
            }
            CovidIssueKind::PrevalentMissingSource => {
                for r in rows_of(&out, None) {
                    let v = out.value(r, confirmed).as_f64_or_zero();
                    out.set_value(r, confirmed, Value::float(v * 0.8));
                }
            }
        }
        Arc::new(out)
    }

    /// One-day-lag auxiliary feature for each location: the location's total
    /// confirmed count on `day - lag` in the *corrupted* relation (the lag
    /// features the paper registers for trend/seasonality).
    pub fn lag_feature(
        &self,
        relation: &Relation,
        day: i64,
        lag: i64,
    ) -> std::collections::BTreeMap<Value, f64> {
        let location = self.schema.attr("location").unwrap();
        let day_attr = self.schema.attr("day").unwrap();
        let confirmed = self.schema.attr("confirmed").unwrap();
        let mut map = std::collections::BTreeMap::new();
        for r in 0..relation.len() {
            if relation.value(r, day_attr) == &Value::int(day - lag) {
                let loc = relation.value(r, location).clone();
                let v = relation.value(r, confirmed).as_f64_or_zero();
                *map.entry(loc).or_insert(0.0) += v;
            }
        }
        map
    }

    /// The generator configuration.
    pub fn config(&self) -> CovidConfig {
        self.config
    }
}

/// Issue plan mirroring Table 1 (US dataset): ids and error classes.
pub const US_ISSUE_PLAN: [(&str, CovidIssueKind); 16] = [
    ("3572-missing", CovidIssueKind::MissingReports),
    ("3521-definition", CovidIssueKind::DefinitionChange),
    ("3482-missing", CovidIssueKind::MissingReports),
    ("3476-prevalent", CovidIssueKind::PrevalentMissingSource),
    ("3468-missing", CovidIssueKind::MissingReports),
    ("3466-missing", CovidIssueKind::MissingReports),
    ("3456-backlog", CovidIssueKind::Backlog),
    ("3451-missing", CovidIssueKind::MissingReports),
    ("3449-over", CovidIssueKind::OverReported),
    ("3448-over", CovidIssueKind::OverReported),
    ("3441-prevalent", CovidIssueKind::PrevalentMissingSource),
    ("3438-backlog", CovidIssueKind::Backlog),
    ("3424-typo", CovidIssueKind::Typo),
    ("3416-over", CovidIssueKind::OverReported),
    ("3414-over", CovidIssueKind::OverReported),
    ("3402-typo", CovidIssueKind::Typo),
];

/// Issue plan mirroring Table 2 (global dataset).
pub const GLOBAL_ISSUE_PLAN: [(&str, CovidIssueKind); 14] = [
    ("3623-over", CovidIssueKind::OverReported),
    ("3618-prevalent", CovidIssueKind::PrevalentMissingSource),
    ("3578-over", CovidIssueKind::OverReported),
    ("3567-missing", CovidIssueKind::MissingReports),
    ("3546-prevalent", CovidIssueKind::PrevalentMissingSource),
    ("3538a-definition", CovidIssueKind::DefinitionChange),
    ("3538b-missing", CovidIssueKind::MissingReports),
    ("3518-prevalent", CovidIssueKind::PrevalentMissingSource),
    ("3498-prevalent", CovidIssueKind::PrevalentMissingSource),
    ("3494-missing", CovidIssueKind::MissingReports),
    ("3471-definition", CovidIssueKind::DefinitionChange),
    ("3423-typo", CovidIssueKind::Typo),
    ("3413-missing", CovidIssueKind::MissingReports),
    ("3408-over", CovidIssueKind::OverReported),
];

#[cfg(test)]
mod tests {
    use super::*;
    use reptile_relational::{Predicate, View};

    #[test]
    fn us_panel_has_expected_shape() {
        let config = CovidConfig {
            locations: 8,
            sub_locations: 3,
            days: 20,
            seed: 1,
        };
        let cs = CovidCaseStudy::us(config);
        assert_eq!(cs.clean.len(), 8 * 3 * 20);
        assert_eq!(cs.issues.len(), 16);
        assert_eq!(cs.scales.len(), 8);
        assert_eq!(cs.config().days, 20);
        // issue days fall inside the panel
        for issue in &cs.issues {
            assert!(issue.day >= 0 && (issue.day as usize) < config.days + 1);
        }
    }

    #[test]
    fn global_panel_has_14_issues() {
        let cs = CovidCaseStudy::global(CovidConfig {
            locations: 16,
            sub_locations: 2,
            days: 15,
            seed: 2,
        });
        assert_eq!(cs.issues.len(), 14);
        let prevalent = cs.issues.iter().filter(|i| i.kind.is_prevalent()).count();
        assert_eq!(prevalent, 4);
    }

    #[test]
    fn missing_report_issue_reduces_the_day_total() {
        let config = CovidConfig {
            locations: 6,
            sub_locations: 2,
            days: 20,
            seed: 3,
        };
        let cs = CovidCaseStudy::us(config);
        let issue = cs
            .issues
            .iter()
            .find(|i| i.kind == CovidIssueKind::MissingReports)
            .unwrap();
        let corrupted = cs.corrupted_relation(issue);
        let s = cs.schema.clone();
        let day_total = |rel: &Arc<Relation>, loc: &Value| -> f64 {
            let view = View::compute(
                rel.clone(),
                Predicate::eq(s.attr("day").unwrap(), Value::int(issue.day)),
                vec![s.attr("location").unwrap()],
                s.attr("confirmed").unwrap(),
                &reptile_relational::Exec::Serial,
            )
            .unwrap();
            view.aggregate_of(
                &reptile_relational::GroupKey(vec![loc.clone()]),
                reptile_relational::AggregateKind::Sum,
            )
            .unwrap()
        };
        let clean_total = day_total(&cs.clean, &issue.location);
        let bad_total = day_total(&corrupted, &issue.location);
        assert!(
            bad_total < clean_total * 0.2,
            "{bad_total} vs {clean_total}"
        );
        assert!(issue.too_low);
    }

    #[test]
    fn lag_feature_sums_previous_day() {
        let cs = CovidCaseStudy::us(CovidConfig {
            locations: 3,
            sub_locations: 2,
            days: 10,
            seed: 4,
        });
        let lag = cs.lag_feature(&cs.clean, 5, 1);
        assert_eq!(lag.len(), 3);
        for v in lag.values() {
            assert!(*v > 0.0);
        }
        // lag beyond the panel start yields an empty map
        let empty = cs.lag_feature(&cs.clean, 0, 1);
        assert!(empty.is_empty());
    }
}
