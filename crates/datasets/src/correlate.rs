//! Generating auxiliary measures with a target rank correlation
//! (Iman–Conover style, Section 5.2.1).
//!
//! The accuracy experiments feed Reptile an auxiliary table whose measure is
//! correlated (ρ ∈ [0.6, 1.0]) with the true group statistic. We follow the
//! same distribution-free idea as Iman & Conover: generate independent noise,
//! then rearrange it so that its rank structure matches a blend of the target
//! variable's ranks and random ranks, which yields (approximately) the desired
//! rank correlation without changing the noise's marginal distribution.

use crate::rng::SimRng;

/// Produce a vector correlated with `target` at (approximately) rank
/// correlation `rho` in `[0, 1]`. The output marginal is normal with the
/// given mean and standard deviation.
pub fn correlated_with(
    target: &[f64],
    rho: f64,
    mean: f64,
    std: f64,
    rng: &mut SimRng,
) -> Vec<f64> {
    let n = target.len();
    if n == 0 {
        return Vec::new();
    }
    let rho = rho.clamp(0.0, 1.0);
    // Standardise the target.
    let t_mean = target.iter().sum::<f64>() / n as f64;
    let t_var = target
        .iter()
        .map(|x| (x - t_mean) * (x - t_mean))
        .sum::<f64>()
        / n as f64;
    let t_std = t_var.sqrt().max(1e-12);
    // Gaussian copula blend: z = rho * standardized(target) + sqrt(1-rho^2) * noise.
    target
        .iter()
        .map(|x| {
            let z = rho * ((x - t_mean) / t_std) + (1.0 - rho * rho).sqrt() * rng.standard_normal();
            mean + std * z
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::pearson;

    fn target(n: usize, rng: &mut SimRng) -> Vec<f64> {
        (0..n).map(|_| rng.normal(100.0, 20.0)).collect()
    }

    #[test]
    fn high_rho_gives_high_correlation() {
        let mut rng = SimRng::seed_from_u64(11);
        let t = target(2000, &mut rng);
        let aux = correlated_with(&t, 0.9, 50.0, 5.0, &mut rng);
        let r = pearson(&t, &aux);
        assert!(r > 0.85 && r < 0.95, "r = {r}");
    }

    #[test]
    fn low_rho_gives_low_correlation() {
        let mut rng = SimRng::seed_from_u64(13);
        let t = target(2000, &mut rng);
        let aux = correlated_with(&t, 0.2, 0.0, 1.0, &mut rng);
        let r = pearson(&t, &aux);
        assert!(r > 0.1 && r < 0.35, "r = {r}");
    }

    #[test]
    fn rho_one_is_a_monotone_transform() {
        let mut rng = SimRng::seed_from_u64(17);
        let t = target(500, &mut rng);
        let aux = correlated_with(&t, 1.0, 0.0, 1.0, &mut rng);
        let r = pearson(&t, &aux);
        assert!(r > 0.999, "r = {r}");
    }

    #[test]
    fn marginal_matches_requested_moments() {
        let mut rng = SimRng::seed_from_u64(19);
        let t = target(5000, &mut rng);
        let aux = correlated_with(&t, 0.6, 200.0, 10.0, &mut rng);
        let mean = aux.iter().sum::<f64>() / aux.len() as f64;
        assert!((mean - 200.0).abs() < 1.0, "mean = {mean}");
        let var = aux.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / aux.len() as f64;
        assert!((var.sqrt() - 10.0).abs() < 1.0, "std = {}", var.sqrt());
    }

    #[test]
    fn empty_and_constant_targets_are_safe() {
        let mut rng = SimRng::seed_from_u64(23);
        assert!(correlated_with(&[], 0.8, 0.0, 1.0, &mut rng).is_empty());
        let constant = vec![5.0; 100];
        let aux = correlated_with(&constant, 0.8, 0.0, 1.0, &mut rng);
        assert_eq!(aux.len(), 100);
        assert!(aux.iter().all(|v| v.is_finite()));
    }
}
