//! Synthetic hierarchical structures for the performance experiments
//! (Section 5.1, Figures 7–9 and 15).
//!
//! The runtime benchmarks only need the *shape* of the data — `d` hierarchies
//! with `t` attributes of cardinality `w` each — so this module builds
//! [`Factorization`]s (and matching [`FeatureMap`]s) directly, without going
//! through a relation.

use reptile_factor::{Factorization, FeatureMap, HierarchyFactor};
use reptile_relational::{AttrId, Value};

/// Build one synthetic hierarchy with `levels` attributes and `leaf_count`
/// leaf paths. `fanout = 1` gives the paper's default shape where every level
/// has the same cardinality as the leaves (a chain); `fanout > 1` gives a
/// proper tree where each parent has `fanout` children.
pub fn synthetic_hierarchy(
    name: &str,
    first_attr: usize,
    levels: usize,
    leaf_count: usize,
    fanout: usize,
) -> HierarchyFactor {
    assert!(levels >= 1 && leaf_count >= 1 && fanout >= 1);
    let attrs: Vec<AttrId> = (0..levels).map(|i| AttrId(first_attr + i)).collect();
    let mut paths = Vec::with_capacity(leaf_count);
    for leaf in 0..leaf_count {
        let mut path = Vec::with_capacity(levels);
        for level in 0..levels {
            // Ancestor index at this level: leaves are grouped into blocks of
            // size fanout^(levels-1-level).
            let block = fanout.pow((levels - 1 - level) as u32).max(1);
            let idx = leaf / block;
            path.push(Value::str(format!("{name}-L{level}-{idx:06}")));
        }
        paths.push(path);
    }
    HierarchyFactor::from_paths(name, attrs, paths)
}

/// Build a factorisation with `d` hierarchies of `t` attributes each, every
/// attribute having `w` distinct values (the paper's default synthetic
/// setup), plus an indexed feature map with deterministic pseudo-random
/// feature values.
pub fn synthetic_factorization(d: usize, t: usize, w: usize) -> (Factorization, FeatureMap) {
    synthetic_factorization_with_fanout(d, t, w, 1)
}

/// Like [`synthetic_factorization`] but with a per-level fanout, producing
/// `w` leaves per hierarchy with `fanout` children per parent.
pub fn synthetic_factorization_with_fanout(
    d: usize,
    t: usize,
    w: usize,
    fanout: usize,
) -> (Factorization, FeatureMap) {
    let hierarchies: Vec<HierarchyFactor> = (0..d)
        .map(|h| synthetic_hierarchy(&format!("H{h}"), h * t, t, w, fanout))
        .collect();
    let fact = Factorization::new(hierarchies);
    let mut features = FeatureMap::zeros(fact.n_cols());
    let mut seed = 0x9E3779B97F4A7C15u64;
    for c in 0..fact.n_cols() {
        let pos = fact.position(c);
        for (v, _) in fact.hierarchies()[pos.hierarchy].level_runs(pos.level) {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let f = ((seed >> 33) as f64 / u32::MAX as f64) * 2.0 - 1.0;
            features.set(c, v, f);
        }
    }
    (fact, features)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_hierarchy_has_requested_cardinalities() {
        let h = synthetic_hierarchy("A", 0, 3, 10, 1);
        assert_eq!(h.depth(), 3);
        assert_eq!(h.leaf_count(), 10);
        // fanout 1 -> every level has 10 distinct values
        for level in 0..3 {
            assert_eq!(h.cardinality(level), 10);
        }
    }

    #[test]
    fn tree_hierarchy_respects_fanout() {
        let h = synthetic_hierarchy("A", 0, 3, 27, 3);
        assert_eq!(h.leaf_count(), 27);
        assert_eq!(h.cardinality(0), 3);
        assert_eq!(h.cardinality(1), 9);
        assert_eq!(h.cardinality(2), 27);
        // every level-1 value has exactly 3 leaf descendants
        for (v, _) in h.level_runs(1) {
            assert_eq!(h.descendant_leaves(1, &v), 3);
        }
    }

    #[test]
    fn factorization_shape_is_exponential_in_d() {
        let (fact, features) = synthetic_factorization(3, 2, 4);
        assert_eq!(fact.n_cols(), 6);
        assert_eq!(fact.n_rows(), 4usize.pow(3));
        assert_eq!(features.n_cols(), 6);
        // feature values are registered for every domain value
        for c in 0..fact.n_cols() {
            let pos = fact.position(c);
            for (v, _) in fact.hierarchies()[pos.hierarchy].level_runs(pos.level) {
                assert!(features.value(c, &v).abs() <= 1.0);
                assert_ne!(features.value(c, &v), 0.0);
            }
        }
    }

    #[test]
    fn paper_default_shape() {
        // Figure 7: d hierarchies, one attribute each, w = 10 -> X is 10^d x d
        let (fact, _) = synthetic_factorization(4, 1, 10);
        assert_eq!(fact.n_rows(), 10_000);
        assert_eq!(fact.n_cols(), 4);
    }
}
