//! Synthetic accuracy workload (Section 5.2, Figures 11 and 12).
//!
//! One dimension attribute with `groups` unique values (default 100); the
//! number of rows per group is drawn from `N(100, 20)` and each measure value
//! from `N(100, 20)`. For every aggregate statistic an auxiliary table is
//! generated whose measure is correlated (`rho`) with the clean per-group
//! statistic. One or more groups are then corrupted with the error classes of
//! [`crate::errors`], and the injected ground truth is recorded.

use crate::correlate::correlated_with;
use crate::errors::{inject_all, ErrorKind, InjectedError};
use crate::rng::SimRng;
use reptile_relational::{
    AggState, AggregateKind, AttrId, Predicate, Relation, Schema, Value, View,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Number of groups (unique dimension values).
    pub groups: usize,
    /// Mean / std of the per-group row count.
    pub rows_mean: f64,
    /// Standard deviation of the per-group row count.
    pub rows_std: f64,
    /// Mean / std of the measure values.
    pub value_mean: f64,
    /// Standard deviation of the measure values.
    pub value_std: f64,
    /// Correlation of the auxiliary tables with the clean statistics.
    pub rho: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            groups: 100,
            rows_mean: 100.0,
            rows_std: 20.0,
            value_mean: 100.0,
            value_std: 20.0,
            rho: 0.8,
            seed: 0,
        }
    }
}

/// A generated synthetic dataset plus its auxiliary tables and clean
/// per-group statistics.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The clean relation.
    pub relation: Arc<Relation>,
    /// Shared schema (`dim` hierarchy with attribute `g`, measure `m`).
    pub schema: Arc<Schema>,
    /// The group attribute.
    pub group_attr: AttrId,
    /// The measure attribute.
    pub measure: AttrId,
    /// Auxiliary measure correlated with the clean COUNT of each group.
    pub aux_count: BTreeMap<Value, f64>,
    /// Auxiliary measure correlated with the clean MEAN of each group.
    pub aux_mean: BTreeMap<Value, f64>,
    /// Auxiliary measure correlated with the clean STD of each group.
    pub aux_std: BTreeMap<Value, f64>,
    /// Clean per-group aggregate states (the ground truth before corruption).
    pub clean_stats: BTreeMap<Value, AggState>,
}

impl SyntheticDataset {
    /// Generate a clean dataset.
    pub fn generate(config: SyntheticConfig) -> Self {
        let mut rng = SimRng::seed_from_u64(config.seed);
        let schema = Arc::new(
            Schema::builder()
                .hierarchy("dim", ["g"])
                .measure("m")
                .build()
                .unwrap(),
        );
        let mut relation = Relation::empty(schema.clone());
        let group_values: Vec<Value> = (0..config.groups)
            .map(|i| Value::str(format!("g{i:04}")))
            .collect();
        let mut clean_stats: BTreeMap<Value, AggState> = BTreeMap::new();
        for g in &group_values {
            let rows = rng
                .normal(config.rows_mean, config.rows_std)
                .round()
                .max(5.0) as usize;
            let mut agg = AggState::empty();
            for _ in 0..rows {
                let v = rng.normal(config.value_mean, config.value_std);
                agg.push(v);
                relation
                    .push_row(vec![g.clone(), Value::float(v)])
                    .expect("arity");
            }
            clean_stats.insert(g.clone(), agg);
        }
        // Auxiliary tables correlated with each clean statistic.
        let aux_for = |kind: AggregateKind, rng: &mut SimRng| -> BTreeMap<Value, f64> {
            let targets: Vec<f64> = group_values
                .iter()
                .map(|g| clean_stats[g].value(kind))
                .collect();
            let aux = correlated_with(&targets, config.rho, 50.0, 10.0, rng);
            group_values.iter().cloned().zip(aux).collect()
        };
        let aux_count = aux_for(AggregateKind::Count, &mut rng);
        let aux_mean = aux_for(AggregateKind::Mean, &mut rng);
        let aux_std = aux_for(AggregateKind::Std, &mut rng);
        let group_attr = schema.attr("g").unwrap();
        let measure = schema.attr("m").unwrap();
        SyntheticDataset {
            relation: Arc::new(relation),
            schema,
            group_attr,
            measure,
            aux_count,
            aux_mean,
            aux_std,
            clean_stats,
        }
    }

    /// The auxiliary table matching a complained statistic.
    pub fn aux_for(&self, kind: AggregateKind) -> &BTreeMap<Value, f64> {
        match kind {
            AggregateKind::Count => &self.aux_count,
            AggregateKind::Std | AggregateKind::Var => &self.aux_std,
            _ => &self.aux_mean,
        }
    }

    /// Corrupt distinct randomly chosen groups with the given error kinds.
    /// Each `(kind, is_target)` pair corrupts one group; returns the corrupted
    /// relation and the injected ground truth (in the same order).
    pub fn corrupt(
        &self,
        kinds: &[(ErrorKind, bool)],
        rng: &mut SimRng,
    ) -> (Arc<Relation>, Vec<InjectedError>) {
        let group_values: Vec<Value> = self.clean_stats.keys().cloned().collect();
        let chosen = rng.choose_indices(group_values.len(), kinds.len());
        let errors: Vec<InjectedError> = kinds
            .iter()
            .zip(&chosen)
            .map(|((kind, is_target), idx)| InjectedError {
                attr: self.group_attr,
                group: group_values[*idx].clone(),
                kind: *kind,
                is_target: *is_target,
            })
            .collect();
        let corrupted = inject_all(&self.relation, self.measure, &errors, rng);
        (Arc::new(corrupted), errors)
    }

    /// Clean per-group view (useful for assertions and baselines).
    pub fn clean_view(&self) -> View {
        View::compute(
            self.relation.clone(),
            Predicate::all(),
            vec![self.group_attr],
            self.measure,
            &reptile_relational::Exec::Serial,
        )
        .expect("clean view")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_matches_configuration() {
        let config = SyntheticConfig {
            groups: 20,
            seed: 3,
            ..Default::default()
        };
        let data = SyntheticDataset::generate(config);
        assert_eq!(data.clean_stats.len(), 20);
        assert_eq!(data.aux_count.len(), 20);
        let view = data.clean_view();
        assert_eq!(view.len(), 20);
        // group sizes follow N(100, 20) roughly
        let counts: Vec<f64> = view.groups().map(|(_, a)| a.count()).collect();
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        assert!(mean > 70.0 && mean < 130.0, "mean group size {mean}");
        // clean stats agree with the view
        for (key, agg) in view.groups() {
            let clean = &data.clean_stats[&key.values()[0]];
            assert!((clean.mean() - agg.mean()).abs() < 1e-9);
            assert!((clean.count() - agg.count()).abs() < 1e-9);
        }
    }

    #[test]
    fn aux_tables_are_correlated_with_their_statistic() {
        let config = SyntheticConfig {
            groups: 200,
            rho: 0.9,
            seed: 11,
            ..Default::default()
        };
        let data = SyntheticDataset::generate(config);
        let groups: Vec<Value> = data.clean_stats.keys().cloned().collect();
        let counts: Vec<f64> = groups.iter().map(|g| data.clean_stats[g].count()).collect();
        let aux: Vec<f64> = groups.iter().map(|g| data.aux_count[g]).collect();
        let r = crate::rng::pearson(&counts, &aux);
        assert!(r > 0.8, "correlation {r}");
        assert!(std::ptr::eq(
            data.aux_for(AggregateKind::Count),
            &data.aux_count
        ));
        assert!(std::ptr::eq(
            data.aux_for(AggregateKind::Std),
            &data.aux_std
        ));
        assert!(std::ptr::eq(
            data.aux_for(AggregateKind::Sum),
            &data.aux_mean
        ));
    }

    #[test]
    fn corruption_changes_only_chosen_groups() {
        let config = SyntheticConfig {
            groups: 30,
            seed: 5,
            ..Default::default()
        };
        let data = SyntheticDataset::generate(config);
        let mut rng = SimRng::seed_from_u64(99);
        let (corrupted, errors) = data.corrupt(
            &[
                (ErrorKind::MissingRecords, true),
                (ErrorKind::IncreaseValues(5.0), false),
            ],
            &mut rng,
        );
        assert_eq!(errors.len(), 2);
        assert_ne!(errors[0].group, errors[1].group);
        assert!(errors[0].is_target);
        assert!(!errors[1].is_target);
        let view = View::compute(
            corrupted.clone(),
            Predicate::all(),
            vec![data.group_attr],
            data.measure,
            &reptile_relational::Exec::Serial,
        )
        .unwrap();
        // the missing-records group lost about half its rows
        let key = reptile_relational::GroupKey(vec![errors[0].group.clone()]);
        let clean_count = data.clean_stats[&errors[0].group].count();
        let corrupted_count = view.group(&key).unwrap().count();
        assert!(corrupted_count < clean_count * 0.75);
        // an untouched group is unchanged
        let untouched = data
            .clean_stats
            .keys()
            .find(|g| **g != errors[0].group && **g != errors[1].group)
            .unwrap();
        let key = reptile_relational::GroupKey(vec![untouched.clone()]);
        assert_eq!(
            view.group(&key).unwrap().count(),
            data.clean_stats[untouched].count()
        );
    }
}
