//! Row-major dense matrices.

use crate::{LinalgError, Result};
use std::fmt;

/// A dense, row-major `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Build from nested row vectors; panics if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "ragged rows passed to Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Column vector from a slice.
    pub fn column_vector(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Row vector from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Add to an element.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] += v;
    }

    /// Borrow one row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy one column out. Prefer [`Matrix::col_iter`] in loops — this
    /// allocates a fresh `Vec` per call.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Borrowing strided iterator over one column (no allocation).
    pub fn col_iter(&self, c: usize) -> impl Iterator<Item = f64> + '_ {
        assert!(
            c < self.cols || self.rows == 0,
            "column {c} out of range for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data.iter().skip(c).step_by(self.cols.max(1)).copied()
    }

    /// Consume the matrix and return its flat row-major data. For an `n × 1`
    /// column vector this *is* the column, without the copy `col(0)` pays.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order for better locality on row-major data.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Element-wise sum.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| f(*a, *b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Trace (sum of diagonal elements) of a square matrix.
    pub fn trace(&self) -> Result<f64> {
        if self.rows != self.cols {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok((0..self.rows).map(|i| self.get(i, i)).sum())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element-wise difference to another matrix of the same
    /// shape; `f64::INFINITY` if shapes differ.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f64 {
        if self.shape() != rhs.shape() {
            return f64::INFINITY;
        }
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Stack matrices vertically (all must share the column count).
    pub fn vertcat(blocks: &[Matrix]) -> Result<Matrix> {
        if blocks.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = blocks[0].cols;
        for b in blocks {
            if b.cols != cols {
                return Err(LinalgError::DimensionMismatch {
                    op: "vertcat",
                    lhs: (blocks[0].rows, cols),
                    rhs: b.shape(),
                });
            }
        }
        let rows = blocks.iter().map(|b| b.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for b in blocks {
            data.extend_from_slice(&b.data);
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Extract the sub-matrix of rows `[start, start+len)`.
    pub fn row_block(&self, start: usize, len: usize) -> Matrix {
        let mut out = Matrix::zeros(len, self.cols);
        out.data
            .copy_from_slice(&self.data[start * self.cols..(start + len) * self.cols]);
        out
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(10);
            for c in 0..show_cols {
                write!(f, "{:>10.4}", self.get(r, c))?;
                if c + 1 < show_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > show_cols {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.get(2, 1), 6.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0, 5.0]);
        assert_eq!(m.col_iter(0).collect::<Vec<_>>(), vec![1.0, 3.0, 5.0]);
        assert_eq!(m.col_iter(1).collect::<Vec<_>>(), vec![2.0, 4.0, 6.0]);
        assert_eq!(m.clone().into_data(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let id = Matrix::identity(3);
        assert_eq!(id.trace().unwrap(), 3.0);
        let v = Matrix::column_vector(&[1.0, 2.0]);
        assert_eq!(v.shape(), (2, 1));
        let v = Matrix::row_vector(&[1.0, 2.0]);
        assert_eq!(v.shape(), (1, 2));
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 3.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn transpose_add_sub_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let t = a.transpose();
        assert_eq!(t.get(0, 1), 3.0);
        let sum = a.add(&a).unwrap();
        assert_eq!(sum.get(1, 1), 8.0);
        let diff = a.sub(&a).unwrap();
        assert_eq!(diff.frobenius_norm(), 0.0);
        let scaled = a.scale(2.0);
        assert_eq!(scaled.get(0, 0), 2.0);
        assert!(a.add(&Matrix::zeros(1, 1)).is_err());
        assert!(Matrix::zeros(2, 3).trace().is_err());
    }

    #[test]
    fn vertcat_and_row_block() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let c = Matrix::vertcat(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.get(2, 1), 6.0);
        let blk = c.row_block(1, 2);
        assert_eq!(blk, b);
        assert!(Matrix::vertcat(&[a, Matrix::zeros(1, 3)]).is_err());
        assert_eq!(Matrix::vertcat(&[]).unwrap().shape(), (0, 0));
    }

    #[test]
    fn max_abs_diff() {
        let a = Matrix::identity(2);
        let mut b = Matrix::identity(2);
        b.set(0, 1, 0.25);
        assert_eq!(a.max_abs_diff(&b), 0.25);
        assert_eq!(a.max_abs_diff(&Matrix::zeros(3, 3)), f64::INFINITY);
    }

    #[test]
    fn debug_format_is_bounded() {
        let m = Matrix::zeros(100, 100);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 100x100"));
        assert!(s.len() < 10_000);
    }
}
