//! Cholesky decomposition for symmetric positive-definite systems.
//!
//! The EM algorithm of Appendix D repeatedly inverts gram-style matrices —
//! `XᵀX`, `Z_iᵀZ_i/σ² + Σ⁻¹`, `Σ` — all of which are symmetric positive
//! (semi-)definite once the ridge is added. Cholesky (`A = L·Lᵀ`) factors
//! them in half the flops of LU with no pivoting or permutation bookkeeping,
//! so it is the preferred path; callers fall back to LU when a matrix turns
//! out not to be SPD (see [`invert_spd_with_ridge`]).

use crate::dense::Matrix;
use crate::{LinalgError, Result};

/// A Cholesky factorisation `A = L·Lᵀ` of a symmetric positive-definite
/// matrix (only the lower triangle of `A` is read).
#[derive(Debug, Clone)]
pub struct CholeskyDecomposition {
    /// Lower-triangular factor `L` (entries above the diagonal are zero).
    l: Matrix,
}

impl CholeskyDecomposition {
    /// Factorise a square SPD matrix. Returns [`LinalgError::Singular`] if a
    /// diagonal pivot is not strictly positive — the caller's signal that the
    /// matrix is not (numerically) SPD and LU should be used instead.
    pub fn new(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a.get(j, j);
            for k in 0..j {
                let v = l.get(j, k);
                d -= v * v;
            }
            // Non-positive (or NaN) pivot: not numerically SPD.
            if !d.is_finite() || d <= 1e-12 {
                return Err(LinalgError::Singular);
            }
            let diag = d.sqrt();
            l.set(j, j, diag);
            for i in (j + 1)..n {
                let mut v = a.get(i, j);
                for k in 0..j {
                    v -= l.get(i, k) * l.get(j, k);
                }
                l.set(i, j, v / diag);
            }
        }
        Ok(CholeskyDecomposition { l })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b` for a single right-hand-side vector: forward
    /// substitution with `L`, backward with `Lᵀ`.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut v = b[i];
            for (j, &yj) in y.iter().enumerate().take(i) {
                v -= self.l.get(i, j) * yj;
            }
            y[i] = v / self.l.get(i, i);
        }
        // Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut v = y[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                v -= self.l.get(j, i) * xj;
            }
            x[i] = v / self.l.get(i, i);
        }
        Ok(x)
    }

    /// Solve `A X = B` for a matrix right-hand side.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        for c in 0..b.cols() {
            for (v, bv) in col.iter_mut().zip(b.col_iter(c)) {
                *v = bv;
            }
            let x = self.solve_vec(&col)?;
            for (r, v) in x.into_iter().enumerate() {
                out.set(r, c, v);
            }
        }
        Ok(out)
    }

    /// The inverse of the factorised matrix.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve(&Matrix::identity(self.dim()))
    }

    /// The determinant (product of squared diagonal entries of `L`).
    pub fn determinant(&self) -> f64 {
        let mut det = 1.0;
        for i in 0..self.dim() {
            let d = self.l.get(i, i);
            det *= d * d;
        }
        det
    }
}

/// Invert a symmetric positive-definite matrix, adding `ridge` to the
/// diagonal first. Tries Cholesky; if the (ridged) matrix is not numerically
/// SPD, falls back to the pivoted-LU path of
/// [`invert_with_ridge`](crate::lu::invert_with_ridge), which also handles
/// the indefinite case.
pub fn invert_spd_with_ridge(a: &Matrix, ridge: f64) -> Result<Matrix> {
    let mut reg = a.clone();
    if ridge != 0.0 {
        for i in 0..a.rows().min(a.cols()) {
            reg.add_at(i, i, ridge);
        }
    }
    match CholeskyDecomposition::new(&reg) {
        Ok(chol) => chol.inverse(),
        Err(LinalgError::Singular) => crate::lu::invert_with_ridge(a, ridge),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::{invert_with_ridge, LuDecomposition};

    fn spd(n: usize, seed: u64) -> Matrix {
        // B·Bᵀ + n·I is SPD for any B.
        let mut s = seed;
        let b = Matrix::from_fn(n, n, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / u32::MAX as f64) * 2.0 - 1.0
        });
        let mut a = b.matmul(&b.transpose()).unwrap();
        for i in 0..n {
            a.add_at(i, i, n as f64);
        }
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd(5, 3);
        let chol = CholeskyDecomposition::new(&a).unwrap();
        let back = chol.l().matmul(&chol.l().transpose()).unwrap();
        assert!(back.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn solve_and_inverse_match_lu() {
        for n in 1..=6 {
            let a = spd(n, 11 + n as u64);
            let chol = CholeskyDecomposition::new(&a).unwrap();
            let lu = LuDecomposition::new(&a).unwrap();
            let b: Vec<f64> = (0..n).map(|i| i as f64 - 1.5).collect();
            let xc = chol.solve_vec(&b).unwrap();
            let xl = lu.solve_vec(&b).unwrap();
            for (c, l) in xc.iter().zip(&xl) {
                assert!((c - l).abs() < 1e-9);
            }
            let inv = chol.inverse().unwrap();
            let prod = a.matmul(&inv).unwrap();
            assert!(prod.max_abs_diff(&Matrix::identity(n)) < 1e-9);
            assert!((chol.determinant() - lu.determinant()).abs() < 1e-6 * lu.determinant());
        }
    }

    #[test]
    fn non_spd_matrix_is_rejected() {
        // Symmetric but indefinite (negative eigenvalue).
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!(matches!(
            CholeskyDecomposition::new(&a),
            Err(LinalgError::Singular)
        ));
        let nonsquare = Matrix::zeros(2, 3);
        assert!(matches!(
            CholeskyDecomposition::new(&nonsquare),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn spd_inversion_falls_back_to_lu() {
        // Indefinite matrix: Cholesky refuses, LU fallback succeeds.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let inv = invert_spd_with_ridge(&a, 0.0).unwrap();
        let expected = invert_with_ridge(&a, 0.0).unwrap();
        assert!(inv.max_abs_diff(&expected) < 1e-12);
        // SPD matrix: result matches the LU inverse to machine precision.
        let a = spd(4, 7);
        let inv = invert_spd_with_ridge(&a, 1e-8).unwrap();
        let prod = a.matmul(&inv).unwrap();
        // the ridge perturbs the inverse by ~1e-8
        assert!(prod.max_abs_diff(&Matrix::identity(4)) < 1e-6);
    }

    #[test]
    fn shape_errors_on_solve() {
        let a = spd(3, 1);
        let chol = CholeskyDecomposition::new(&a).unwrap();
        assert!(chol.solve_vec(&[1.0]).is_err());
        assert!(chol.solve(&Matrix::zeros(2, 2)).is_err());
    }
}
