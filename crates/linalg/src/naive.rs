//! Naive (materialised) matrix operations.
//!
//! These are the "LAPACK / Matlab" style baselines of the paper's Figures 7,
//! 10 and 15: they operate on a fully materialised feature matrix with plain
//! dense products. The factorised operators in `reptile-factor` are checked
//! against them for correctness and benchmarked against them for speed.

use crate::dense::Matrix;
use crate::Result;

/// Gram matrix `Xᵀ · X` over the materialised feature matrix.
pub fn gram(x: &Matrix) -> Result<Matrix> {
    x.transpose().matmul(x)
}

/// Left multiplication `A · X` with a materialised `X`.
pub fn left_mult(a: &Matrix, x: &Matrix) -> Result<Matrix> {
    a.matmul(x)
}

/// Right multiplication `X · A` with a materialised `X`.
pub fn right_mult(x: &Matrix, a: &Matrix) -> Result<Matrix> {
    x.matmul(a)
}

/// Per-cluster gram matrices `X_iᵀ · X_i`, where `clusters[i]` is the row
/// range (start, len) of the i-th cluster in `x`.
pub fn cluster_grams(x: &Matrix, clusters: &[(usize, usize)]) -> Result<Vec<Matrix>> {
    clusters
        .iter()
        .map(|&(start, len)| gram(&x.row_block(start, len)))
        .collect()
}

/// Per-cluster left multiplications `A_i · X_i`.
pub fn cluster_left_mult(
    a: &[Matrix],
    x: &Matrix,
    clusters: &[(usize, usize)],
) -> Result<Vec<Matrix>> {
    a.iter()
        .zip(clusters)
        .map(|(ai, &(start, len))| ai.matmul(&x.row_block(start, len)))
        .collect()
}

/// Per-cluster right multiplications `X_i · A_i`.
pub fn cluster_right_mult(
    x: &Matrix,
    a: &[Matrix],
    clusters: &[(usize, usize)],
) -> Result<Vec<Matrix>> {
    a.iter()
        .zip(clusters)
        .map(|(ai, &(start, len))| x.row_block(start, len).matmul(ai))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gram_is_symmetric_and_correct() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = gram(&x).unwrap();
        assert_eq!(g.shape(), (2, 2));
        assert_eq!(g.get(0, 0), 35.0);
        assert_eq!(g.get(0, 1), 44.0);
        assert_eq!(g.get(1, 0), 44.0);
        assert_eq!(g.get(1, 1), 56.0);
    }

    #[test]
    fn left_and_right_mult() {
        let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]);
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(left_mult(&a, &x).unwrap().row(0), &[3.0, 8.0]);
        let b = Matrix::column_vector(&[1.0, 1.0]);
        assert_eq!(right_mult(&x, &b).unwrap().col(0), vec![1.0, 2.0]);
    }

    #[test]
    fn cluster_variants_partition_rows() {
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![2.0, 1.0],
            vec![0.0, 3.0],
            vec![1.0, 1.0],
        ]);
        let clusters = vec![(0usize, 2usize), (2, 2)];
        let grams = cluster_grams(&x, &clusters).unwrap();
        assert_eq!(grams.len(), 2);
        assert_eq!(grams[0].get(0, 0), 5.0);
        assert_eq!(grams[1].get(1, 1), 10.0);

        let a = vec![
            Matrix::row_vector(&[1.0, 1.0]),
            Matrix::row_vector(&[1.0, -1.0]),
        ];
        let lm = cluster_left_mult(&a, &x, &clusters).unwrap();
        assert_eq!(lm[0].row(0), &[3.0, 1.0]);
        assert_eq!(lm[1].row(0), &[-1.0, 2.0]);

        let c = vec![
            Matrix::column_vector(&[1.0, 1.0]),
            Matrix::column_vector(&[2.0, 0.0]),
        ];
        let rm = cluster_right_mult(&x, &c, &clusters).unwrap();
        assert_eq!(rm[0].col(0), vec![1.0, 3.0]);
        assert_eq!(rm[1].col(0), vec![0.0, 2.0]);
    }
}
