//! Prefix sums for O(1) range summation.
//!
//! The factorised left-multiplication operator (Algorithm 3 of the paper)
//! preprocesses each row of the dense operand into a prefix sum so that the
//! sum over any contiguous range of elements costs O(1).

/// Prefix sums over a slice of `f64`.
#[derive(Debug, Clone)]
pub struct PrefixSum {
    cumulative: Vec<f64>,
}

impl PrefixSum {
    /// Build the prefix-sum table (O(n)).
    pub fn new(values: &[f64]) -> Self {
        let mut cumulative = Vec::with_capacity(values.len() + 1);
        cumulative.push(0.0);
        let mut acc = 0.0;
        for v in values {
            acc += v;
            cumulative.push(acc);
        }
        PrefixSum { cumulative }
    }

    /// Number of underlying elements.
    pub fn len(&self) -> usize {
        self.cumulative.len() - 1
    }

    /// True if the underlying slice was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of elements in the half-open range `[start, end)`; out-of-range
    /// bounds are clamped.
    pub fn range_sum(&self, start: usize, end: usize) -> f64 {
        let n = self.len();
        let start = start.min(n);
        let end = end.min(n);
        if end <= start {
            return 0.0;
        }
        self.cumulative[end] - self.cumulative[start]
    }

    /// Sum of all elements.
    pub fn total(&self) -> f64 {
        *self.cumulative.last().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_sums_match_direct_summation() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let p = PrefixSum::new(&data);
        assert_eq!(p.len(), 5);
        assert_eq!(p.total(), 15.0);
        for start in 0..=data.len() {
            for end in start..=data.len() {
                let direct: f64 = data[start..end].iter().sum();
                assert!((p.range_sum(start, end) - direct).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn out_of_range_is_clamped() {
        let p = PrefixSum::new(&[1.0, 1.0]);
        assert_eq!(p.range_sum(0, 100), 2.0);
        assert_eq!(p.range_sum(5, 10), 0.0);
        assert_eq!(p.range_sum(1, 1), 0.0);
        assert_eq!(p.range_sum(1, 0), 0.0);
    }

    #[test]
    fn empty_input() {
        let p = PrefixSum::new(&[]);
        assert!(p.is_empty());
        assert_eq!(p.total(), 0.0);
        assert_eq!(p.range_sum(0, 1), 0.0);
    }
}
