//! Dense linear-algebra substrate for the Reptile reproduction.
//!
//! **Paper map** (Huang & Wu, *Reptile*, SIGMOD 2022): the dense baseline
//! the factorised operators of **Section 4.2** are compared against (the
//! paper uses LAPACK via Matlab), plus the Cholesky/LU solvers behind the
//! EM updates of the **Section 5** multi-level model.
//!
//! The paper compares its factorised matrix operators against LAPACK (via
//! Matlab). LAPACK is not available offline, so this crate provides the dense
//! stand-in: a row-major [`Matrix`] with textbook GEMM, LU-based solves and
//! inverses, and the [`naive`] module that performs gram-matrix / left- /
//! right-multiplication over the fully materialised feature matrix. The
//! factorised counterparts live in the `reptile-factor` crate and are verified
//! against these implementations by property tests.

pub mod cholesky;
pub mod dense;
pub mod lu;
pub mod naive;
pub mod prefix;

pub use cholesky::{invert_spd_with_ridge, CholeskyDecomposition};
pub use dense::Matrix;
pub use lu::LuDecomposition;
pub use prefix::PrefixSum;

/// Errors from linear algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// textual description of the operation
        op: &'static str,
        /// left operand shape
        lhs: (usize, usize),
        /// right operand shape
        rhs: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) and cannot be
    /// factorised / inverted.
    Singular,
    /// The operation requires a square matrix.
    NotSquare { rows: usize, cols: usize },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "expected a square matrix, got {rows}x{cols}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Result alias for the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
