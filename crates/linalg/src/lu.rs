//! LU decomposition with partial pivoting: solves, inverses, determinants.
//!
//! The EM algorithm of Appendix D needs `(X^T X)^{-1}` and
//! `(X_i^T X_i / σ² + Σ^{-1})^{-1}` every iteration; these are small `m × m`
//! systems (m = number of features), so a straightforward LU with partial
//! pivoting is both adequate and easy to audit.

use crate::dense::Matrix;
use crate::{LinalgError, Result};

/// An LU factorisation `P·A = L·U` of a square matrix.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined L (below diagonal, unit diagonal implied) and U (upper).
    lu: Matrix,
    /// Row permutation applied to A.
    perm: Vec<usize>,
    /// Sign of the permutation (+1 / -1), used for the determinant.
    sign: f64,
}

impl LuDecomposition {
    /// Factorise a square matrix. Returns [`LinalgError::Singular`] if a pivot
    /// is (numerically) zero.
    pub fn new(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivoting: find the largest |value| in column k at or
            // below the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = lu.get(k, k).abs();
            for r in (k + 1)..n {
                let v = lu.get(r, k).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-12 {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                for c in 0..n {
                    let tmp = lu.get(k, c);
                    lu.set(k, c, lu.get(pivot_row, c));
                    lu.set(pivot_row, c, tmp);
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu.get(k, k);
            for r in (k + 1)..n {
                let factor = lu.get(r, k) / pivot;
                lu.set(r, k, factor);
                for c in (k + 1)..n {
                    lu.set(r, c, lu.get(r, c) - factor * lu.get(k, c));
                }
            }
        }
        Ok(LuDecomposition { lu, perm, sign })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A x = b` for a single right-hand-side column vector.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation then forward/backward substitution.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut v = b[self.perm[i]];
            for (j, &yj) in y.iter().enumerate().take(i) {
                v -= self.lu.get(i, j) * yj;
            }
            y[i] = v;
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut v = y[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                v -= self.lu.get(i, j) * xj;
            }
            x[i] = v / self.lu.get(i, i);
        }
        Ok(x)
    }

    /// Solve `A X = B` for a matrix right-hand side.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "solve",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        for c in 0..b.cols() {
            for (v, bv) in col.iter_mut().zip(b.col_iter(c)) {
                *v = bv;
            }
            let x = self.solve_vec(&col)?;
            for (r, v) in x.into_iter().enumerate() {
                out.set(r, c, v);
            }
        }
        Ok(out)
    }

    /// The inverse of the factorised matrix.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve(&Matrix::identity(self.dim()))
    }

    /// The determinant of the factorised matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.dim() {
            det *= self.lu.get(i, i);
        }
        det
    }
}

/// Convenience: invert a square matrix, adding `ridge` to the diagonal first
/// (used to keep near-singular gram matrices invertible during EM).
pub fn invert_with_ridge(a: &Matrix, ridge: f64) -> Result<Matrix> {
    let mut reg = a.clone();
    if ridge != 0.0 {
        for i in 0..a.rows().min(a.cols()) {
            reg.add_at(i, i, ridge);
        }
    }
    match LuDecomposition::new(&reg) {
        Ok(lu) => lu.inverse(),
        Err(LinalgError::Singular) => {
            // escalate the ridge once before giving up
            let mut reg2 = a.clone();
            let bump = if ridge > 0.0 { ridge * 1e3 } else { 1e-6 };
            for i in 0..a.rows().min(a.cols()) {
                reg2.add_at(i, i, bump);
            }
            LuDecomposition::new(&reg2)?.inverse()
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert!(a.max_abs_diff(b) < tol, "matrices differ:\n{a:?}\n{b:?}");
    }

    #[test]
    fn solve_simple_system() {
        // 2x + y = 5 ; x + 3y = 10  => x = 1, y = 3
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve_vec(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[
            vec![4.0, 2.0, 0.5],
            vec![2.0, 5.0, 1.0],
            vec![0.5, 1.0, 3.0],
        ]);
        let inv = LuDecomposition::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert_close(&prod, &Matrix::identity(3), 1e-10);
    }

    #[test]
    fn determinant_matches_known_value() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.determinant() + 2.0).abs() < 1e-12);
        // Pivoting path (first pivot is small)
        let b = Matrix::from_rows(&[vec![1e-14, 1.0], vec![1.0, 1.0]]);
        let lu = LuDecomposition::new(&b).unwrap();
        assert!((lu.determinant() - (1e-14 - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::Singular)
        ));
        // with a ridge it becomes invertible
        let inv = invert_with_ridge(&a, 1e-3).unwrap();
        assert_eq!(inv.shape(), (2, 2));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn solve_matrix_rhs() {
        let a = Matrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![9.0, 1.0], vec![8.0, 2.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let back = a.matmul(&x).unwrap();
        assert_close(&back, &b, 1e-10);
        assert!(lu.solve(&Matrix::zeros(3, 1)).is_err());
        assert!(lu.solve_vec(&[1.0]).is_err());
    }

    #[test]
    fn random_inverse_property() {
        // lightweight deterministic pseudo-random check over several sizes
        let mut seed = 42u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / u32::MAX as f64) * 2.0 - 1.0
        };
        for n in 1..=6 {
            // diagonally dominant -> well conditioned
            let mut a = Matrix::from_fn(n, n, |_, _| next());
            for i in 0..n {
                a.add_at(i, i, n as f64 + 1.0);
            }
            let inv = LuDecomposition::new(&a).unwrap().inverse().unwrap();
            let prod = a.matmul(&inv).unwrap();
            assert!(prod.max_abs_diff(&Matrix::identity(n)) < 1e-8);
        }
    }
}
