//! The worker process: holds one relation partition plus keyed state blobs
//! and answers scatter RPCs.
//!
//! A worker is deliberately dumb: it never plans, never merges, and never
//! talks to another worker. The coordinator ships it a partition (full
//! dictionaries in code order — the shared-dictionary contract, so the
//! worker's codes mean exactly what the coordinator's do), ships keyed
//! state blobs (encoded factors under their content fingerprint), and
//! scatters operation payloads. Every answer is either the exact bytes the
//! coordinator's merge expects or a typed error — a worker holding a stale
//! snapshot epoch answers with an error, never a wrong-but-plausible
//! partial.

use crate::frame::{
    read_frame, write_frame, Frame, WireError, KIND_ERROR, KIND_ESTEP_PARTIAL, KIND_GRAM_PARTIAL,
    KIND_LOAD_PARTITION, KIND_LOAD_STATE, KIND_OK, KIND_PING, KIND_RESULT, KIND_SCATTER,
    KIND_SHUTDOWN,
};
use reptile_factor::encoded::EncodedHierarchyAggregates;
use reptile_factor::{payload, EncodedFactor};
use reptile_model::remote::{self as em_remote, EmAnswerError, EmWorkerState};
use reptile_relational::codec::{put_str, Reader};
use reptile_relational::exec::{
    DOMAIN_EM, DOMAIN_FACTOR, OP_AGG_RANGE, OP_CLUSTER_ZTZ, OP_E_STEP, OP_GRAM_CELLS, OP_VIEW_SCAN,
};
use reptile_relational::ship::{self, ShippedPartition};
use std::collections::HashMap;
use std::io::BufWriter;
use std::net::{TcpListener, TcpStream};

/// Worker-side failure classes, carried in [`KIND_ERROR`] reply bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerErrorKind {
    /// The request body did not decode (or referenced an unknown op).
    BadRequest,
    /// The worker does not hold the state the request needs (missing
    /// partition, missing factor, stale snapshot epoch).
    MissingState,
    /// The operation itself failed.
    Compute,
}

impl WorkerErrorKind {
    fn to_tag(self) -> u8 {
        match self {
            WorkerErrorKind::BadRequest => 0,
            WorkerErrorKind::MissingState => 1,
            WorkerErrorKind::Compute => 2,
        }
    }

    /// Decode the tag byte; unknown tags conservatively map to `Compute`.
    pub fn from_tag(tag: u8) -> Self {
        match tag {
            0 => WorkerErrorKind::BadRequest,
            1 => WorkerErrorKind::MissingState,
            _ => WorkerErrorKind::Compute,
        }
    }
}

impl std::fmt::Display for WorkerErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WorkerErrorKind::BadRequest => "bad_request",
            WorkerErrorKind::MissingState => "missing_state",
            WorkerErrorKind::Compute => "compute",
        })
    }
}

/// Encode a typed error reply body.
fn error_body(kind: WorkerErrorKind, message: &str) -> Vec<u8> {
    let mut body = vec![kind.to_tag()];
    put_str(&mut body, message);
    body
}

/// Decode an error reply body into `(kind, message)`. Total: malformed
/// error bodies decode to a `Compute` error describing the malformation.
pub fn decode_error_body(body: &[u8]) -> (WorkerErrorKind, String) {
    let mut r = Reader::new(body);
    let kind = match r.u8() {
        Ok(tag) => WorkerErrorKind::from_tag(tag),
        Err(_) => return (WorkerErrorKind::Compute, "empty error body".to_string()),
    };
    match r.str() {
        Ok(msg) => (kind, msg.to_string()),
        Err(_) => (kind, "unreadable error message".to_string()),
    }
}

/// Everything a worker process holds between requests: at most one
/// partition per relation lineage (the newest shipped epoch wins) and one
/// decoded state blob per `(domain, key)`.
#[derive(Default)]
pub struct WorkerState {
    /// Relation partitions by lineage ident.
    partitions: HashMap<u64, ShippedPartition>,
    /// Decoded encoded-factor state by content fingerprint.
    factors: HashMap<u64, EncodedFactor>,
    /// Decoded EM state (aggregates + features + clusters) by content
    /// fingerprint — the ship-once operands of the per-iteration gram and
    /// E-step scatters.
    em_states: HashMap<u64, EmWorkerState>,
}

impl WorkerState {
    /// Fresh empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of partitions currently held (one per relation lineage).
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Number of factor state blobs currently held.
    pub fn factor_count(&self) -> usize {
        self.factors.len()
    }

    /// Number of EM state blobs currently held.
    pub fn em_state_count(&self) -> usize {
        self.em_states.len()
    }

    /// Handle one request frame, producing the reply frame. `shutdown` is
    /// set when the request asks the process to exit.
    pub fn handle(&mut self, frame: &Frame, shutdown: &mut bool) -> Frame {
        let id = frame.id;
        match frame.kind {
            KIND_PING => Frame::new(KIND_OK, id, Vec::new()),
            KIND_SHUTDOWN => {
                *shutdown = true;
                Frame::new(KIND_OK, id, Vec::new())
            }
            KIND_LOAD_PARTITION => match ship::decode_partition(&frame.body) {
                Ok(part) => {
                    // Newest epoch wins: a re-ship after ingest replaces the
                    // stale partition for that lineage.
                    self.partitions.insert(part.relation.ident(), part);
                    Frame::new(KIND_OK, id, Vec::new())
                }
                Err(e) => Frame::new(
                    KIND_ERROR,
                    id,
                    error_body(WorkerErrorKind::BadRequest, &format!("partition: {e}")),
                ),
            },
            KIND_LOAD_STATE => self.load_state(id, &frame.body),
            KIND_SCATTER => self.scatter(id, &frame.body),
            k => Frame::new(
                KIND_ERROR,
                id,
                error_body(WorkerErrorKind::BadRequest, &format!("kind {k:#04x}")),
            ),
        }
    }

    fn load_state(&mut self, id: u64, body: &[u8]) -> Frame {
        let mut r = Reader::new(body);
        let (domain, key) = match (r.u8(), r.u64()) {
            (Ok(d), Ok(k)) => (d, k),
            _ => {
                return Frame::new(
                    KIND_ERROR,
                    id,
                    error_body(WorkerErrorKind::BadRequest, "state header truncated"),
                )
            }
        };
        // Decode at load time so scatters never pay it and a bad payload
        // fails loudly here, keyed to the exact ship.
        match domain {
            DOMAIN_FACTOR => match payload::decode_factor(&body[9..]) {
                Ok(factor) => {
                    self.factors.insert(key, factor);
                    Frame::new(KIND_OK, id, Vec::new())
                }
                Err(e) => Frame::new(
                    KIND_ERROR,
                    id,
                    error_body(WorkerErrorKind::BadRequest, &format!("factor state: {e}")),
                ),
            },
            DOMAIN_EM => match em_remote::decode_em_state(&body[9..]) {
                Ok(state) => {
                    self.em_states.insert(key, state);
                    Frame::new(KIND_OK, id, Vec::new())
                }
                Err(e) => Frame::new(
                    KIND_ERROR,
                    id,
                    error_body(WorkerErrorKind::BadRequest, &format!("EM state: {e}")),
                ),
            },
            _ => Frame::new(
                KIND_ERROR,
                id,
                error_body(
                    WorkerErrorKind::BadRequest,
                    &format!("unknown state domain {domain}"),
                ),
            ),
        }
    }

    fn scatter(&mut self, id: u64, body: &[u8]) -> Frame {
        let Some((&op, payload_bytes)) = body.split_first() else {
            return Frame::new(
                KIND_ERROR,
                id,
                error_body(WorkerErrorKind::BadRequest, "empty scatter body"),
            );
        };
        match op {
            OP_VIEW_SCAN => self.view_scan(id, payload_bytes),
            OP_AGG_RANGE => self.agg_range(id, payload_bytes),
            OP_GRAM_CELLS => self.em_answer(id, KIND_GRAM_PARTIAL, |s| {
                em_remote::answer_gram_cells(&s.em_states, payload_bytes)
            }),
            OP_CLUSTER_ZTZ => self.em_answer(id, KIND_GRAM_PARTIAL, |s| {
                em_remote::answer_cluster_ztz(&s.em_states, payload_bytes)
            }),
            OP_E_STEP => self.em_answer(id, KIND_ESTEP_PARTIAL, |s| {
                em_remote::answer_e_step(&s.em_states, payload_bytes)
            }),
            _ => Frame::new(
                KIND_ERROR,
                id,
                error_body(
                    WorkerErrorKind::BadRequest,
                    &format!("unknown scatter op {op}"),
                ),
            ),
        }
    }

    /// Run one EM operator and wrap its partial in `reply_kind`, mapping
    /// typed answer errors onto the wire error kinds.
    fn em_answer(
        &self,
        id: u64,
        reply_kind: u8,
        answer: impl FnOnce(&Self) -> Result<Vec<u8>, EmAnswerError>,
    ) -> Frame {
        match answer(self) {
            Ok(partial) => Frame::new(reply_kind, id, partial),
            Err(EmAnswerError::BadRequest(msg)) => Frame::new(
                KIND_ERROR,
                id,
                error_body(WorkerErrorKind::BadRequest, &msg),
            ),
            Err(EmAnswerError::MissingState(key)) => Frame::new(
                KIND_ERROR,
                id,
                error_body(
                    WorkerErrorKind::MissingState,
                    &format!("no EM state under key {key:#018x}"),
                ),
            ),
            Err(EmAnswerError::Compute(msg)) => {
                Frame::new(KIND_ERROR, id, error_body(WorkerErrorKind::Compute, &msg))
            }
        }
    }

    fn view_scan(&self, id: u64, plan: &[u8]) -> Frame {
        // Peek the plan's target lineage to find the partition; the epoch
        // check itself lives in `answer_view_scan`.
        let mut r = Reader::new(plan);
        let Ok(ident) = r.u64() else {
            return Frame::new(
                KIND_ERROR,
                id,
                error_body(WorkerErrorKind::BadRequest, "plan truncated"),
            );
        };
        let Some(partition) = self.partitions.get(&ident) else {
            return Frame::new(
                KIND_ERROR,
                id,
                error_body(
                    WorkerErrorKind::MissingState,
                    &format!("no partition for relation {ident}"),
                ),
            );
        };
        match ship::answer_view_scan(partition, plan) {
            Ok(partial) => Frame::new(KIND_RESULT, id, partial),
            Err(e) => Frame::new(
                KIND_ERROR,
                id,
                error_body(WorkerErrorKind::Compute, &e.to_string()),
            ),
        }
    }

    fn agg_range(&self, id: u64, request: &[u8]) -> Frame {
        let (key, start, len) = match payload::decode_agg_request(request) {
            Ok(parts) => parts,
            Err(e) => {
                return Frame::new(
                    KIND_ERROR,
                    id,
                    error_body(WorkerErrorKind::BadRequest, &format!("agg request: {e}")),
                )
            }
        };
        let Some(factor) = self.factors.get(&key) else {
            return Frame::new(
                KIND_ERROR,
                id,
                error_body(
                    WorkerErrorKind::MissingState,
                    &format!("no factor state under key {key:#018x}"),
                ),
            );
        };
        if start + len > factor.leaf_count() {
            return Frame::new(
                KIND_ERROR,
                id,
                error_body(
                    WorkerErrorKind::Compute,
                    &format!(
                        "range {start}+{len} out of bounds for {} paths",
                        factor.leaf_count()
                    ),
                ),
            );
        }
        let partial = EncodedHierarchyAggregates::compute_range(factor, start, len);
        Frame::new(KIND_RESULT, id, payload::encode_aggregates(&partial))
    }
}

/// Serve one coordinator connection to completion. Returns `true` when a
/// shutdown frame was handled (the caller should stop accepting).
///
/// Frames are answered in arrival order on the same stream, so a
/// coordinator that pipelines N requests reads N replies back in order.
/// Malformed frames get a typed error reply where a request id could be
/// read; an unframeable stream ends the connection.
pub fn serve_connection(state: &mut WorkerState, stream: TcpStream) -> Result<bool, WireError> {
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);
    let mut shutdown = false;
    while let Some(frame) = read_frame(&mut reader)? {
        let reply = state.handle(&frame, &mut shutdown);
        write_frame(&mut writer, &reply)?;
        if shutdown {
            break;
        }
    }
    Ok(shutdown)
}

/// The worker accept loop: serve coordinator connections one at a time
/// (state persists across connections) until a shutdown frame arrives.
/// Connection-level errors drop that connection and keep accepting — a
/// wedged or hostile peer must not take the worker down.
pub fn serve(listener: TcpListener) -> std::io::Result<()> {
    let mut state = WorkerState::new();
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        if let Ok(true) = serve_connection(&mut state, stream) {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use reptile_relational::{Relation, Schema, Value};
    use std::sync::Arc;

    fn sample_relation() -> Arc<Relation> {
        let schema = Arc::new(
            Schema::builder()
                .hierarchy("geo", ["district", "village"])
                .measure("m")
                .build()
                .unwrap(),
        );
        let mut b = Relation::builder(schema);
        for (d, v, m) in [
            ("D0", "D0-V0", 1.5),
            ("D0", "D0-V1", 2.5),
            ("D1", "D1-V0", 4.0),
        ] {
            b = b
                .row([Value::str(d), Value::str(v), Value::float(m)])
                .unwrap();
        }
        Arc::new(b.build())
    }

    #[test]
    fn ping_and_shutdown() {
        let mut state = WorkerState::new();
        let mut shutdown = false;
        let reply = state.handle(&Frame::new(KIND_PING, 3, vec![]), &mut shutdown);
        assert_eq!(reply, Frame::new(KIND_OK, 3, vec![]));
        assert!(!shutdown);
        state.handle(&Frame::new(KIND_SHUTDOWN, 4, vec![]), &mut shutdown);
        assert!(shutdown);
    }

    #[test]
    fn partition_load_then_scan_answers_exact_partial() {
        let rel = sample_relation();
        let mut state = WorkerState::new();
        let mut shutdown = false;
        let body = ship::encode_partition(&rel, 0, rel.len());
        let reply = state.handle(&Frame::new(KIND_LOAD_PARTITION, 1, body), &mut shutdown);
        assert_eq!(reply.kind, KIND_OK);
        assert_eq!(state.partition_count(), 1);

        let schema = rel.schema();
        let plan = ship::encode_view_plan(
            rel.ident(),
            rel.version(),
            &reptile_relational::Predicate::all(),
            &[schema.attr("district").unwrap()],
            schema.attr("m").unwrap(),
        );
        let mut scatter_body = vec![OP_VIEW_SCAN];
        scatter_body.extend_from_slice(&plan);
        let reply = state.handle(&Frame::new(KIND_SCATTER, 2, scatter_body), &mut shutdown);
        assert_eq!(reply.kind, KIND_RESULT);
        let partial = ship::decode_view_partial(&reply.body, 1).unwrap();
        assert_eq!(partial.len(), 2); // D0 and D1 groups
        assert_eq!(partial[0].1, vec![1.5, 2.5]);
        assert_eq!(partial[1].1, vec![4.0]);
    }

    #[test]
    fn missing_state_and_bad_requests_answer_typed_errors() {
        let mut state = WorkerState::new();
        let mut shutdown = false;
        // Scan without a partition.
        let rel = sample_relation();
        let plan = ship::encode_view_plan(
            rel.ident(),
            rel.version(),
            &reptile_relational::Predicate::all(),
            &[],
            reptile_relational::AttrId(2),
        );
        let mut body = vec![OP_VIEW_SCAN];
        body.extend_from_slice(&plan);
        let reply = state.handle(&Frame::new(KIND_SCATTER, 1, body), &mut shutdown);
        assert_eq!(reply.kind, KIND_ERROR);
        let (kind, msg) = decode_error_body(&reply.body);
        assert_eq!(kind, WorkerErrorKind::MissingState);
        assert!(msg.contains("no partition"), "{msg}");
        // Garbage partition bytes.
        let reply = state.handle(
            &Frame::new(KIND_LOAD_PARTITION, 2, vec![1, 2, 3]),
            &mut shutdown,
        );
        assert_eq!(reply.kind, KIND_ERROR);
        assert_eq!(
            decode_error_body(&reply.body).0,
            WorkerErrorKind::BadRequest
        );
        // Unknown scatter op.
        let reply = state.handle(&Frame::new(KIND_SCATTER, 3, vec![250, 0]), &mut shutdown);
        assert_eq!(
            decode_error_body(&reply.body).0,
            WorkerErrorKind::BadRequest
        );
        // Empty scatter.
        let reply = state.handle(&Frame::new(KIND_SCATTER, 4, vec![]), &mut shutdown);
        assert_eq!(
            decode_error_body(&reply.body).0,
            WorkerErrorKind::BadRequest
        );
        assert!(!shutdown);
    }

    #[test]
    fn factor_state_load_then_agg_range_round_trips() {
        use reptile_factor::{Exec, HierarchyFactor};
        let factor = HierarchyFactor::from_paths(
            "geo".to_string(),
            vec![reptile_relational::AttrId(0), reptile_relational::AttrId(1)],
            vec![
                vec![Value::str("D0"), Value::str("D0-V0")],
                vec![Value::str("D0"), Value::str("D0-V1")],
                vec![Value::str("D1"), Value::str("D1-V0")],
            ],
        );
        let enc = EncodedFactor::encode(&factor, &Exec::Serial);
        let key = enc.fingerprint();
        let mut state = WorkerState::new();
        let mut shutdown = false;
        let mut body = vec![DOMAIN_FACTOR];
        body.extend_from_slice(&key.to_be_bytes());
        body.extend_from_slice(&payload::encode_factor(&enc));
        let reply = state.handle(&Frame::new(KIND_LOAD_STATE, 1, body), &mut shutdown);
        assert_eq!(reply.kind, KIND_OK, "{:?}", decode_error_body(&reply.body));
        assert_eq!(state.factor_count(), 1);

        let mut scatter = vec![OP_AGG_RANGE];
        scatter.extend_from_slice(&payload::encode_agg_request(key, 1, 2));
        let reply = state.handle(&Frame::new(KIND_SCATTER, 2, scatter), &mut shutdown);
        assert_eq!(reply.kind, KIND_RESULT);
        let partial = payload::decode_aggregates(&reply.body).unwrap();
        assert_eq!(
            partial,
            EncodedHierarchyAggregates::compute_range(&enc, 1, 2)
        );

        // Unknown key is a typed MissingState error.
        let mut scatter = vec![OP_AGG_RANGE];
        scatter.extend_from_slice(&payload::encode_agg_request(key ^ 1, 0, 1));
        let reply = state.handle(&Frame::new(KIND_SCATTER, 3, scatter), &mut shutdown);
        assert_eq!(reply.kind, KIND_ERROR);
        assert_eq!(
            decode_error_body(&reply.body).0,
            WorkerErrorKind::MissingState
        );
    }
}
