//! The Reptile worker process: bind a TCP port, print the bound address,
//! and answer coordinator RPCs until a shutdown frame arrives.
//!
//! ```text
//! reptile-worker [--port N]
//! ```
//!
//! `--port 0` (the default) binds an ephemeral port; the process prints
//! `listening on <addr>` on stdout so a launcher can scrape the address.

use std::net::TcpListener;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut port = 0u16;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => {
                let Some(value) = args.next() else {
                    eprintln!("--port needs a value");
                    return ExitCode::FAILURE;
                };
                match value.parse() {
                    Ok(p) => port = p,
                    Err(_) => {
                        eprintln!("invalid port {value:?}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                println!("usage: reptile-worker [--port N]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let listener = match TcpListener::bind(("127.0.0.1", port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(addr) => println!("listening on {addr}"),
        Err(e) => {
            eprintln!("local_addr failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = reptile_wire::worker::serve(listener) {
        eprintln!("worker failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
