//! The worker wire protocol's framing layer (version 1).
//!
//! Same discipline as the serve crate's front-door protocol, with its own
//! magic so a worker and a serving front door can never be confused for
//! one another:
//!
//! ```text
//! [payload_len: u32 BE]  length of everything after these 4 bytes
//! [magic: 2 bytes "RW"]
//! [version: u8]          PROTOCOL_VERSION; others are rejected typed
//! [kind: u8]             frame kind (request or response discriminant)
//! [request_id: u64 BE]   echoed verbatim in the response
//! [body]                 kind-specific, opaque at this layer
//! ```
//!
//! Bodies are byte payloads produced by the `ship`/`payload` codecs
//! (relation partitions, encoded factors, scatter plans, aggregate
//! partials) — this layer moves them; it never interprets them.
//!
//! **Decode safety.** Every decoder is total: truncated, oversized,
//! garbage, wrong-magic, wrong-version and trailing-byte inputs all return
//! a typed [`FrameError`] — never a panic, never a partial read. A length
//! prefix above [`MAX_FRAME_LEN`] is rejected *before* the payload is
//! read, so a hostile prefix cannot trigger an allocation.

use std::io::{Read, Write};

/// Protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;

/// Frame magic: "RW" (Reptile Worker) — distinct from the serving front
/// door's "RP" so cross-connected processes fail typed, not confused.
pub const MAGIC: [u8; 2] = *b"RW";

/// Hard cap on a frame's payload length. Worker frames carry whole
/// relation partitions and encoded factors, so the cap is far above the
/// serving protocol's: 64 MiB. Defined from the codec layer's
/// [`MAX_WIRE_PAYLOAD`](reptile_relational::codec::MAX_WIRE_PAYLOAD) so
/// encode-time payload validation and read-time rejection share one number.
pub const MAX_FRAME_LEN: u32 = reptile_relational::codec::MAX_WIRE_PAYLOAD as u32;

/// Frame header length: magic + version + kind + request id.
const HEADER_LEN: usize = 2 + 1 + 1 + 8;

/// Liveness probe; answered with [`KIND_OK`].
pub const KIND_PING: u8 = 0;
/// Load one relation partition (body: `ship::encode_partition` bytes).
pub const KIND_LOAD_PARTITION: u8 = 1;
/// Load one keyed state blob (body: domain byte + key + payload).
pub const KIND_LOAD_STATE: u8 = 2;
/// Execute one scatter operation (body: op byte + request payload).
pub const KIND_SCATTER: u8 = 3;
/// Ask the worker process to exit after acknowledging.
pub const KIND_SHUTDOWN: u8 = 4;
/// Success with no payload (answers ping / load / shutdown).
pub const KIND_OK: u8 = 0x80;
/// Success carrying a scatter result payload.
pub const KIND_RESULT: u8 = 0x81;
/// Typed failure (body: kind tag + message string).
pub const KIND_ERROR: u8 = 0x82;
/// Success carrying a worker-computed gram partial (gram-cell range or
/// per-cluster `ZᵀZ` blocks; body codecs in `reptile-model`).
pub const KIND_GRAM_PARTIAL: u8 = 0x83;
/// Success carrying a worker-computed E-step partial (per-cluster posterior
/// moments; body codecs in `reptile-model`).
pub const KIND_ESTEP_PARTIAL: u8 = 0x84;

/// Typed framing failure. Every malformed input maps to exactly one of
/// these; decoding never panics and never partially succeeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The input ended before the structure it promised.
    Truncated,
    /// The first two payload bytes were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// The frame speaks a protocol version this build does not.
    UnsupportedVersion(u8),
    /// Unknown frame kind discriminant.
    UnknownKind(u8),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "worker frame truncated"),
            FrameError::BadMagic(m) => write!(f, "bad worker frame magic {m:?}"),
            FrameError::UnsupportedVersion(v) => write!(
                f,
                "unsupported worker protocol version {v} (this build speaks {PROTOCOL_VERSION})"
            ),
            FrameError::UnknownKind(k) => write!(f, "unknown worker frame kind {k:#04x}"),
            FrameError::Oversized(n) => write!(
                f,
                "worker frame payload of {n} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// A decoded frame: kind, correlation id, opaque body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind discriminant (one of the `KIND_*` constants).
    pub kind: u8,
    /// Caller-chosen correlation id, echoed verbatim in replies.
    pub id: u64,
    /// Kind-specific body bytes, uninterpreted at this layer.
    pub body: Vec<u8>,
}

impl Frame {
    /// Build a frame.
    pub fn new(kind: u8, id: u64, body: Vec<u8>) -> Self {
        Frame { kind, id, body }
    }

    /// Encode the frame's payload (everything after the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.body.len());
        out.extend_from_slice(&MAGIC);
        out.push(PROTOCOL_VERSION);
        out.push(self.kind);
        out.extend_from_slice(&self.id.to_be_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Decode a frame payload (everything after the length prefix).
    pub fn decode(payload: &[u8]) -> Result<Frame, FrameError> {
        if payload.len() < HEADER_LEN {
            return Err(FrameError::Truncated);
        }
        let magic: [u8; 2] = payload[0..2].try_into().expect("2 bytes");
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        let version = payload[2];
        if version != PROTOCOL_VERSION {
            return Err(FrameError::UnsupportedVersion(version));
        }
        let kind = payload[3];
        if !matches!(
            kind,
            KIND_PING
                | KIND_LOAD_PARTITION
                | KIND_LOAD_STATE
                | KIND_SCATTER
                | KIND_SHUTDOWN
                | KIND_OK
                | KIND_RESULT
                | KIND_ERROR
                | KIND_GRAM_PARTIAL
                | KIND_ESTEP_PARTIAL
        ) {
            return Err(FrameError::UnknownKind(kind));
        }
        let id = u64::from_be_bytes(payload[4..12].try_into().expect("8 bytes"));
        Ok(Frame {
            kind,
            id,
            body: payload[HEADER_LEN..].to_vec(),
        })
    }
}

/// A failure while moving worker frames over a stream.
#[derive(Debug)]
pub enum WireError {
    /// The bytes violated the framing protocol.
    Frame(FrameError),
    /// The underlying stream failed.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Frame(e) => write!(f, "frame error: {e}"),
            WireError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> Self {
        WireError::Frame(e)
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Write one frame (length prefix + payload) to `w`. Returns the total
/// bytes written (for the coordinator's bytes-shipped accounting). A
/// payload above [`MAX_FRAME_LEN`] fails typed before writing anything.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<usize, WireError> {
    let payload = frame.encode();
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(FrameError::Oversized(payload.len() as u32).into());
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(4 + payload.len())
}

/// Read one frame from `r`. Returns `Ok(None)` on a clean EOF at a frame
/// boundary; EOF mid-frame is [`FrameError::Truncated`], a length prefix
/// above [`MAX_FRAME_LEN`] is [`FrameError::Oversized`] (the payload is
/// *not* read).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(FrameError::Truncated.into())
                };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized(len).into());
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(FrameError::Truncated.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Some(Frame::decode(&payload)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        for (kind, id, body) in [
            (KIND_PING, 0u64, vec![]),
            (KIND_SCATTER, u64::MAX, vec![1u8, 2, 3]),
            (KIND_RESULT, 42, vec![0u8; 1000]),
            (KIND_GRAM_PARTIAL, 43, vec![8u8; 24]),
            (KIND_ESTEP_PARTIAL, 44, vec![9u8; 48]),
        ] {
            let frame = Frame::new(kind, id, body);
            assert_eq!(Frame::decode(&frame.encode()).unwrap(), frame);
        }
    }

    #[test]
    fn hostile_payloads_are_typed_errors() {
        let good = Frame::new(KIND_SCATTER, 7, vec![9u8; 16]).encode();
        for cut in 0..HEADER_LEN {
            assert_eq!(Frame::decode(&good[..cut]), Err(FrameError::Truncated));
        }
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Frame::decode(&bad_magic),
            Err(FrameError::BadMagic(_))
        ));
        let mut bad_version = good.clone();
        bad_version[2] = 99;
        assert_eq!(
            Frame::decode(&bad_version),
            Err(FrameError::UnsupportedVersion(99))
        );
        let mut bad_kind = good.clone();
        bad_kind[3] = 0x55;
        assert_eq!(Frame::decode(&bad_kind), Err(FrameError::UnknownKind(0x55)));
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut stream: &[u8] = &(u32::MAX).to_be_bytes();
        assert!(matches!(
            read_frame(&mut stream),
            Err(WireError::Frame(FrameError::Oversized(_)))
        ));
    }

    #[test]
    fn stream_round_trip_and_clean_eof() {
        let mut buf = Vec::new();
        let a = Frame::new(KIND_LOAD_STATE, 1, vec![5u8; 10]);
        let b = Frame::new(KIND_OK, 1, vec![]);
        write_frame(&mut buf, &a).unwrap();
        write_frame(&mut buf, &b).unwrap();
        let mut cursor: &[u8] = &buf;
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(a));
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(b));
        assert!(read_frame(&mut cursor).unwrap().is_none());
        // EOF mid-frame is typed.
        let mut truncated: &[u8] = &buf[..buf.len() - 3];
        let _ = read_frame(&mut truncated).unwrap();
        assert!(matches!(
            read_frame(&mut truncated),
            Err(WireError::Frame(FrameError::Truncated))
        ));
    }
}
