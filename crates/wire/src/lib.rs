//! Distributed execution for Reptile: worker processes and the
//! coordinator-side transport.
//!
//! **Paper map** (Huang & Wu, *Reptile*, SIGMOD 2022): the factorised
//! aggregate computation of Sections 4.2–4.3 distributes because every
//! merged quantity is an integer-count sum and every shard's output is
//! disjoint — the properties the in-process shard pool already exploits.
//! This crate moves the same shard plan across process boundaries:
//!
//! * [`frame`] — the length-prefixed worker protocol (magic `"RW"`,
//!   version 1): framing, typed decode errors, hostile-input safety;
//! * [`worker`] — the worker process: holds relation partitions (full
//!   dictionaries in code order — the shared-dictionary contract, so codes
//!   mean the same thing on every process) and content-fingerprinted
//!   encoded factors, and answers view-scan and aggregate-range scatters
//!   with exact partials or typed errors;
//! * [`coordinator`] — [`WorkerSet`], the [`RemoteTransport`] the
//!   relational and factor layers scatter through: ship-once partitions
//!   and state, pipelined scatter RPCs, bytes/RPC observability counters.
//!
//! The correctness bar is the workspace's standing one: an
//! [`Exec::Remote`](reptile_relational::Exec) computation must equal the
//! serial one **bit-for-bit** (`==`, never tolerance), including after
//! ingest epochs — driven by the `distributed_exactness` integration test,
//! which runs real worker processes.
//!
//! Run a worker with `cargo run -p reptile-wire --bin reptile-worker --
//! --port 0` (it prints `listening on <addr>`), then connect a
//! [`WorkerSet`] to the printed addresses and wrap it:
//! `Exec::Remote(Remote::new(worker_set))`.

#![warn(missing_docs)]

pub mod coordinator;
pub mod frame;
pub mod testing;
pub mod worker;

pub use coordinator::WorkerSet;
pub use frame::{Frame, FrameError, WireError};
pub use reptile_relational::{Exec, Remote, RemoteError, RemoteTransport};
pub use worker::{WorkerErrorKind, WorkerState};
