//! Deterministic in-process transport for overlap tests and benches.
//!
//! [`LoopbackWorkers`] drives real [`WorkerState`]s (the same handlers a
//! worker process runs) with **injectable per-worker reply delays** and a
//! real threaded [`RemoteTransport::scatter_streamed`]: each worker
//! answers on its own thread after its delay, completions land as they
//! arrive, and the outstanding count is honest. That makes overlapped
//! merging deterministic — because the merge replays partials in worker
//! order, give worker 0 the *shortest* delay and later workers ascending
//! ones: worker 0's partial then folds while the others are still
//! outstanding. (Descending delays would buffer everything until the
//! slowest first worker lands and count zero overlaps.) This is what the
//! exactness property tests and the distributed bench use to
//! assert a non-zero `remote_overlapped_merges` without racing on real
//! network timing.
//!
//! This is production-adjacent test plumbing, not a toy: partials come
//! from the real worker handlers, so a merged result must still be
//! bit-identical to serial.

use crate::frame::{
    Frame, KIND_ERROR, KIND_ESTEP_PARTIAL, KIND_GRAM_PARTIAL, KIND_LOAD_PARTITION, KIND_LOAD_STATE,
    KIND_RESULT, KIND_SCATTER,
};
use crate::worker::{decode_error_body, WorkerState};
use reptile_obs::{add_counter, Counter};
use reptile_relational::ship;
use reptile_relational::{Parallelism, Relation, RemoteError, RemoteTransport};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

/// Shard ranges already shipped, keyed by relation `(ident, version)`.
type ShippedRelations = HashMap<(u64, u64), Vec<(usize, usize)>>;

/// An in-process worker fleet with per-worker artificial reply delays.
pub struct LoopbackWorkers {
    workers: Vec<Mutex<WorkerState>>,
    delays: Vec<Duration>,
    shipped_relations: Mutex<ShippedRelations>,
    shipped_state: Mutex<HashSet<(u8, u64)>>,
    next_id: AtomicU64,
}

impl LoopbackWorkers {
    /// `delays[i]` is how long worker `i` sits on each scatter reply.
    pub fn new(delays: Vec<Duration>) -> Self {
        let workers = delays
            .iter()
            .map(|_| Mutex::new(WorkerState::new()))
            .collect();
        LoopbackWorkers {
            workers,
            delays,
            shipped_relations: Mutex::new(HashMap::new()),
            shipped_state: Mutex::new(HashSet::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// A fleet of `n` undelayed workers.
    pub fn undelayed(n: usize) -> Self {
        Self::new(vec![Duration::ZERO; n])
    }

    fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Run one frame against worker `i` (the real handler), counting the
    /// RPC and shipped bytes like the TCP transport does.
    fn call(&self, i: usize, frame: Frame) -> Frame {
        add_counter(Counter::RemoteRpcs, 1);
        add_counter(Counter::RemoteBytesShipped, (frame.body.len() + 15) as u64);
        let mut shutdown = false;
        self.workers[i]
            .lock()
            .expect("loopback worker lock")
            .handle(&frame, &mut shutdown)
    }
}

fn reply_to_result(frame: Frame) -> Result<Vec<u8>, RemoteError> {
    match frame.kind {
        KIND_RESULT | KIND_GRAM_PARTIAL | KIND_ESTEP_PARTIAL => Ok(frame.body),
        KIND_ERROR => {
            let (kind, msg) = decode_error_body(&frame.body);
            Err(RemoteError::Worker(format!("{kind}: {msg}")))
        }
        k => Err(RemoteError::Protocol(format!(
            "expected scatter result, got kind {k:#04x}"
        ))),
    }
}

fn expect_ok(frame: Frame) -> Result<(), RemoteError> {
    if frame.kind == KIND_ERROR {
        let (kind, msg) = decode_error_body(&frame.body);
        return Err(RemoteError::Worker(format!("{kind}: {msg}")));
    }
    Ok(())
}

impl RemoteTransport for LoopbackWorkers {
    fn workers(&self) -> usize {
        self.workers.len()
    }

    fn ensure_relation(
        &self,
        relation: &std::sync::Arc<Relation>,
    ) -> Result<Vec<(usize, usize)>, RemoteError> {
        let epoch = (relation.ident(), relation.version());
        if let Some(ranges) = self
            .shipped_relations
            .lock()
            .expect("shipped relations lock")
            .get(&epoch)
        {
            return Ok(ranges.clone());
        }
        let ranges = Parallelism::shard_ranges(relation.len(), self.workers.len().max(1));
        let id = self.fresh_id();
        for (i, &(start, len)) in ranges.iter().enumerate() {
            let body = ship::encode_partition(relation, start, len);
            expect_ok(self.call(i, Frame::new(KIND_LOAD_PARTITION, id, body)))?;
        }
        self.shipped_relations
            .lock()
            .expect("shipped relations lock")
            .insert(epoch, ranges.clone());
        Ok(ranges)
    }

    fn ensure_state(
        &self,
        domain: u8,
        key: u64,
        encode: &dyn Fn() -> Vec<u8>,
    ) -> Result<(), RemoteError> {
        if self
            .shipped_state
            .lock()
            .expect("shipped state lock")
            .contains(&(domain, key))
        {
            return Ok(());
        }
        let mut body = vec![domain];
        body.extend_from_slice(&key.to_be_bytes());
        body.extend_from_slice(&encode());
        let id = self.fresh_id();
        for i in 0..self.workers.len() {
            expect_ok(self.call(i, Frame::new(KIND_LOAD_STATE, id, body.clone())))?;
        }
        self.shipped_state
            .lock()
            .expect("shipped state lock")
            .insert((domain, key));
        Ok(())
    }

    fn scatter(
        &self,
        op: u8,
        requests: Vec<Option<Vec<u8>>>,
    ) -> Result<Vec<Option<Vec<u8>>>, RemoteError> {
        let mut replies: Vec<Option<Vec<u8>>> = vec![None; requests.len()];
        self.scatter_streamed(op, requests, &mut |worker, bytes, _outstanding| {
            replies[worker] = Some(bytes);
            Ok(())
        })?;
        Ok(replies)
    }

    fn scatter_streamed(
        &self,
        op: u8,
        requests: Vec<Option<Vec<u8>>>,
        complete: &mut dyn FnMut(usize, Vec<u8>, usize) -> Result<(), RemoteError>,
    ) -> Result<(), RemoteError> {
        if requests.len() != self.workers.len() {
            return Err(RemoteError::Protocol(format!(
                "scatter carries {} requests for {} workers",
                requests.len(),
                self.workers.len()
            )));
        }
        let id = self.fresh_id();
        let live: Vec<usize> = requests
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_some().then_some(i))
            .collect();
        let total = live.len();
        let arrived = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Frame)>();
        std::thread::scope(|scope| {
            for &i in &live {
                let tx = tx.clone();
                let arrived = &arrived;
                let payload = requests[i].as_ref().expect("live request");
                let mut body = Vec::with_capacity(1 + payload.len());
                body.push(op);
                body.extend_from_slice(payload);
                scope.spawn(move || {
                    std::thread::sleep(self.delays[i]);
                    let reply = self.call(i, Frame::new(KIND_SCATTER, id, body));
                    arrived.fetch_add(1, Ordering::SeqCst);
                    let _ = tx.send((i, reply));
                });
            }
            drop(tx);
            let mut first_err: Option<RemoteError> = None;
            for (worker, frame) in rx {
                if first_err.is_some() {
                    continue;
                }
                let step = reply_to_result(frame).and_then(|bytes| {
                    let outstanding = total - arrived.load(Ordering::SeqCst).min(total);
                    complete(worker, bytes, outstanding)
                });
                if let Err(e) = step {
                    first_err = Some(e);
                }
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        })
    }
}
