//! The coordinator-side transport: a [`WorkerSet`] of connected worker
//! processes implementing [`RemoteTransport`].
//!
//! The set owns one TCP connection per worker and does three things:
//!
//! * **Ship-once relations** — [`RemoteTransport::ensure_relation`]
//!   partitions the relation over the workers ([`Parallelism::shard_ranges`],
//!   the *same* contiguous split as in-process sharding, which is what makes
//!   remote partial merges bit-identical) and ships each worker its rows
//!   with the full dictionaries. Shipping is idempotent per snapshot epoch
//!   `(ident, version)`: the first caller pays the bytes, every later plan
//!   against that epoch pays nothing.
//! * **Ship-once state** — [`RemoteTransport::ensure_state`] ships keyed
//!   blobs (encoded factors under their content fingerprint) to every
//!   worker, once per key. Content addressing makes staleness impossible:
//!   post-ingest state has a different fingerprint, so it ships under a new
//!   key instead of silently colliding with the old.
//! * **Pipelined scatters** — [`RemoteTransport::scatter`] writes every
//!   un-pruned worker's request before reading any reply, so one scatter
//!   costs one round trip, not `workers` of them.
//!
//! Every frame written bumps [`Counter::RemoteRpcs`] and adds its bytes to
//! [`Counter::RemoteBytesShipped`].

use crate::frame::{read_frame, write_frame, Frame, WireError, KIND_ERROR, KIND_OK, KIND_RESULT};
use crate::frame::{KIND_LOAD_PARTITION, KIND_LOAD_STATE, KIND_PING, KIND_SCATTER, KIND_SHUTDOWN};
use crate::worker::decode_error_body;
use reptile_obs::{add_counter, Counter};
use reptile_relational::ship;
use reptile_relational::{Parallelism, Relation, RemoteError, RemoteTransport};
use std::collections::{HashMap, HashSet};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One worker connection.
struct WorkerConn {
    stream: TcpStream,
}

impl WorkerConn {
    fn send(&mut self, frame: &Frame) -> Result<(), RemoteError> {
        let bytes = write_frame(&mut self.stream, frame).map_err(wire_err)?;
        add_counter(Counter::RemoteRpcs, 1);
        add_counter(Counter::RemoteBytesShipped, bytes as u64);
        Ok(())
    }

    fn recv(&mut self, expect_id: u64) -> Result<Frame, RemoteError> {
        let frame = read_frame(&mut self.stream)
            .map_err(wire_err)?
            .ok_or_else(|| RemoteError::Transport("worker closed the connection".to_string()))?;
        if frame.id != expect_id {
            return Err(RemoteError::Protocol(format!(
                "reply id {} does not match request id {expect_id}",
                frame.id
            )));
        }
        Ok(frame)
    }
}

fn wire_err(e: WireError) -> RemoteError {
    match e {
        WireError::Frame(f) => RemoteError::Protocol(f.to_string()),
        WireError::Io(io) => RemoteError::Transport(io.to_string()),
    }
}

/// Check an OK-expected reply; worker errors surface typed.
fn expect_ok(frame: &Frame) -> Result<(), RemoteError> {
    match frame.kind {
        KIND_OK => Ok(()),
        KIND_ERROR => {
            let (kind, msg) = decode_error_body(&frame.body);
            Err(RemoteError::Worker(format!("{kind}: {msg}")))
        }
        k => Err(RemoteError::Protocol(format!(
            "expected OK reply, got kind {k:#04x}"
        ))),
    }
}

/// A worker's contiguous `(start, len)` row range within a shipped
/// relation snapshot — the same split `Parallelism::shard_ranges` gives
/// in-process shards.
type ShardRange = (usize, usize);

/// A connected set of worker processes. Cloneable handles share the
/// connections and the ship-once ledgers; typically wrapped in
/// [`Remote::new`](reptile_relational::Remote::new) and carried by
/// [`Exec::Remote`](reptile_relational::Exec).
pub struct WorkerSet {
    conns: Mutex<Vec<WorkerConn>>,
    /// Worker ranges per shipped snapshot epoch `(ident, version)`.
    shipped_relations: Mutex<HashMap<(u64, u64), Vec<ShardRange>>>,
    /// State keys already on every worker.
    shipped_state: Mutex<HashSet<(u8, u64)>>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for WorkerSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerSet")
            .field("workers", &self.workers())
            .finish()
    }
}

impl WorkerSet {
    /// Connect to worker processes at `addrs` and ping each one. Fails if
    /// any worker is unreachable or answers the ping wrong.
    pub fn connect<A: ToSocketAddrs>(addrs: &[A]) -> Result<Arc<WorkerSet>, RemoteError> {
        if addrs.is_empty() {
            return Err(RemoteError::Transport("no worker addresses".to_string()));
        }
        let mut conns = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let stream = TcpStream::connect(addr)
                .map_err(|e| RemoteError::Transport(format!("connect: {e}")))?;
            stream
                .set_nodelay(true)
                .map_err(|e| RemoteError::Transport(e.to_string()))?;
            conns.push(WorkerConn { stream });
        }
        let set = WorkerSet {
            conns: Mutex::new(conns),
            shipped_relations: Mutex::new(HashMap::new()),
            shipped_state: Mutex::new(HashSet::new()),
            next_id: AtomicU64::new(1),
        };
        set.ping()?;
        Ok(Arc::new(set))
    }

    fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Ping every worker (pipelined), verifying liveness and protocol.
    pub fn ping(&self) -> Result<(), RemoteError> {
        let id = self.fresh_id();
        let mut conns = self.conns.lock().expect("worker set lock");
        for conn in conns.iter_mut() {
            conn.send(&Frame::new(KIND_PING, id, Vec::new()))?;
        }
        for conn in conns.iter_mut() {
            expect_ok(&conn.recv(id)?)?;
        }
        Ok(())
    }

    /// Ask every worker process to exit. The set is unusable afterwards.
    pub fn shutdown(&self) -> Result<(), RemoteError> {
        let id = self.fresh_id();
        let mut conns = self.conns.lock().expect("worker set lock");
        for conn in conns.iter_mut() {
            conn.send(&Frame::new(KIND_SHUTDOWN, id, Vec::new()))?;
        }
        for conn in conns.iter_mut() {
            expect_ok(&conn.recv(id)?)?;
        }
        Ok(())
    }
}

impl RemoteTransport for WorkerSet {
    fn workers(&self) -> usize {
        self.conns.lock().expect("worker set lock").len()
    }

    fn ensure_relation(
        &self,
        relation: &Arc<Relation>,
    ) -> Result<Vec<(usize, usize)>, RemoteError> {
        let epoch = (relation.ident(), relation.version());
        if let Some(ranges) = self
            .shipped_relations
            .lock()
            .expect("shipped relations lock")
            .get(&epoch)
        {
            return Ok(ranges.clone());
        }
        let mut conns = self.conns.lock().expect("worker set lock");
        let ranges = Parallelism::shard_ranges(relation.len(), conns.len().max(1));
        let id = self.fresh_id();
        for (conn, &(start, len)) in conns.iter_mut().zip(&ranges) {
            let body = ship::encode_partition(relation, start, len);
            conn.send(&Frame::new(KIND_LOAD_PARTITION, id, body))?;
        }
        for conn in conns.iter_mut() {
            expect_ok(&conn.recv(id)?)?;
        }
        drop(conns);
        self.shipped_relations
            .lock()
            .expect("shipped relations lock")
            .insert(epoch, ranges.clone());
        Ok(ranges)
    }

    fn ensure_state(
        &self,
        domain: u8,
        key: u64,
        encode: &dyn Fn() -> Vec<u8>,
    ) -> Result<(), RemoteError> {
        if self
            .shipped_state
            .lock()
            .expect("shipped state lock")
            .contains(&(domain, key))
        {
            return Ok(());
        }
        let mut body = vec![domain];
        body.extend_from_slice(&key.to_be_bytes());
        body.extend_from_slice(&encode());
        let id = self.fresh_id();
        let mut conns = self.conns.lock().expect("worker set lock");
        for conn in conns.iter_mut() {
            conn.send(&Frame::new(KIND_LOAD_STATE, id, body.clone()))?;
        }
        for conn in conns.iter_mut() {
            expect_ok(&conn.recv(id)?)?;
        }
        drop(conns);
        self.shipped_state
            .lock()
            .expect("shipped state lock")
            .insert((domain, key));
        Ok(())
    }

    fn scatter(
        &self,
        op: u8,
        requests: Vec<Option<Vec<u8>>>,
    ) -> Result<Vec<Option<Vec<u8>>>, RemoteError> {
        let mut conns = self.conns.lock().expect("worker set lock");
        if requests.len() != conns.len() {
            return Err(RemoteError::Protocol(format!(
                "scatter carries {} requests for {} workers",
                requests.len(),
                conns.len()
            )));
        }
        let id = self.fresh_id();
        // Write every un-pruned request before reading any reply: one
        // scatter, one round trip.
        for (conn, request) in conns.iter_mut().zip(&requests) {
            if let Some(payload) = request {
                let mut body = Vec::with_capacity(1 + payload.len());
                body.push(op);
                body.extend_from_slice(payload);
                conn.send(&Frame::new(KIND_SCATTER, id, body))?;
            }
        }
        let mut replies = Vec::with_capacity(requests.len());
        for (conn, request) in conns.iter_mut().zip(&requests) {
            if request.is_none() {
                replies.push(None);
                continue;
            }
            let frame = conn.recv(id)?;
            match frame.kind {
                KIND_RESULT => replies.push(Some(frame.body)),
                KIND_ERROR => {
                    let (kind, msg) = decode_error_body(&frame.body);
                    return Err(RemoteError::Worker(format!("{kind}: {msg}")));
                }
                k => {
                    return Err(RemoteError::Protocol(format!(
                        "expected scatter result, got kind {k:#04x}"
                    )))
                }
            }
        }
        Ok(replies)
    }
}
