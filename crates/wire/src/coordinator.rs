//! The coordinator-side transport: a [`WorkerSet`] of connected worker
//! processes implementing [`RemoteTransport`].
//!
//! The set owns one TCP connection per worker and does three things:
//!
//! * **Ship-once relations** — [`RemoteTransport::ensure_relation`]
//!   partitions the relation over the workers ([`Parallelism::shard_ranges`],
//!   the *same* contiguous split as in-process sharding, which is what makes
//!   remote partial merges bit-identical) and ships each worker its rows
//!   with the full dictionaries. Shipping is idempotent per snapshot epoch
//!   `(ident, version)`: the first caller pays the bytes, every later plan
//!   against that epoch pays nothing.
//! * **Ship-once state** — [`RemoteTransport::ensure_state`] ships keyed
//!   blobs (encoded factors under their content fingerprint) to every
//!   worker, once per key. Content addressing makes staleness impossible:
//!   post-ingest state has a different fingerprint, so it ships under a new
//!   key instead of silently colliding with the old.
//! * **Overlapped scatters** — [`RemoteTransport::scatter_streamed`]
//!   writes every un-pruned worker's request before reading any reply
//!   (one round trip), then consumes replies **as they arrive**: one
//!   reader thread per live worker feeds a completion channel, and the
//!   coordinator's merge runs the moment a partial lands while later
//!   replies are still in flight. Each completion reports how many replies
//!   are still outstanding, which is what lets the in-order fold driver
//!   ([`reptile_relational::exec::scatter_fold_in_order`]) count merges
//!   that genuinely overlapped the network wait
//!   ([`Counter::RemoteOverlappedMerges`]). The blocking
//!   [`RemoteTransport::scatter`] is a thin gather over the same path.
//!
//! Every frame written bumps [`Counter::RemoteRpcs`] and adds its bytes to
//! [`Counter::RemoteBytesShipped`].

use crate::frame::{read_frame, write_frame, Frame, WireError, KIND_ERROR, KIND_OK, KIND_RESULT};
use crate::frame::{
    KIND_ESTEP_PARTIAL, KIND_GRAM_PARTIAL, KIND_LOAD_PARTITION, KIND_LOAD_STATE, KIND_PING,
    KIND_SCATTER, KIND_SHUTDOWN,
};
use crate::worker::decode_error_body;
use reptile_obs::{add_counter, Counter};
use reptile_relational::ship;
use reptile_relational::{Parallelism, Relation, RemoteError, RemoteTransport};
use std::collections::{HashMap, HashSet};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// One worker connection.
struct WorkerConn {
    stream: TcpStream,
}

impl WorkerConn {
    fn send(&mut self, frame: &Frame) -> Result<(), RemoteError> {
        let bytes = write_frame(&mut self.stream, frame).map_err(wire_err)?;
        add_counter(Counter::RemoteRpcs, 1);
        add_counter(Counter::RemoteBytesShipped, bytes as u64);
        Ok(())
    }

    fn recv(&mut self, expect_id: u64) -> Result<Frame, RemoteError> {
        let frame = read_frame(&mut self.stream)
            .map_err(wire_err)?
            .ok_or_else(|| RemoteError::Transport("worker closed the connection".to_string()))?;
        if frame.id != expect_id {
            return Err(RemoteError::Protocol(format!(
                "reply id {} does not match request id {expect_id}",
                frame.id
            )));
        }
        Ok(frame)
    }
}

fn wire_err(e: WireError) -> RemoteError {
    match e {
        WireError::Frame(f) => RemoteError::Protocol(f.to_string()),
        WireError::Io(io) => RemoteError::Transport(io.to_string()),
    }
}

/// Check an OK-expected reply; worker errors surface typed.
fn expect_ok(frame: &Frame) -> Result<(), RemoteError> {
    match frame.kind {
        KIND_OK => Ok(()),
        KIND_ERROR => {
            let (kind, msg) = decode_error_body(&frame.body);
            Err(RemoteError::Worker(format!("{kind}: {msg}")))
        }
        k => Err(RemoteError::Protocol(format!(
            "expected OK reply, got kind {k:#04x}"
        ))),
    }
}

/// A worker's contiguous `(start, len)` row range within a shipped
/// relation snapshot — the same split `Parallelism::shard_ranges` gives
/// in-process shards.
type ShardRange = (usize, usize);

/// A connected set of worker processes. Cloneable handles share the
/// connections and the ship-once ledgers; typically wrapped in
/// [`Remote::new`](reptile_relational::Remote::new) and carried by
/// [`Exec::Remote`](reptile_relational::Exec).
pub struct WorkerSet {
    /// One lock per connection so a streamed scatter's reader threads can
    /// each own their worker's stream without serialising on a set-wide
    /// lock.
    conns: Vec<Mutex<WorkerConn>>,
    /// Serialises whole operations (a scatter, a ship, a ping): frames of
    /// two concurrent operations must never interleave on the streams.
    op_gate: Mutex<()>,
    /// Worker ranges per shipped snapshot epoch `(ident, version)`.
    shipped_relations: Mutex<HashMap<(u64, u64), Vec<ShardRange>>>,
    /// State keys already on every worker.
    shipped_state: Mutex<HashSet<(u8, u64)>>,
    next_id: AtomicU64,
}

/// Bounded connect retries: a worker that is still binding its listener
/// (the common race when coordinator and workers start together) gets a
/// few short, exponentially backed-off attempts before
/// [`RemoteError::Transport`] surfaces.
const CONNECT_ATTEMPTS: u32 = 5;
const CONNECT_BACKOFF_START_MS: u64 = 5;

impl std::fmt::Debug for WorkerSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerSet")
            .field("workers", &self.workers())
            .finish()
    }
}

impl WorkerSet {
    /// Connect to worker processes at `addrs` and ping each one. Each
    /// address gets [`CONNECT_ATTEMPTS`] tries with short exponential
    /// backoff (a worker still binding its listener is a race, not a
    /// failure); a worker that stays unreachable or answers the ping wrong
    /// fails the whole set.
    pub fn connect<A: ToSocketAddrs>(addrs: &[A]) -> Result<Arc<WorkerSet>, RemoteError> {
        if addrs.is_empty() {
            return Err(RemoteError::Transport("no worker addresses".to_string()));
        }
        let mut conns = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let stream = connect_with_backoff(addr)?;
            stream
                .set_nodelay(true)
                .map_err(|e| RemoteError::Transport(e.to_string()))?;
            conns.push(Mutex::new(WorkerConn { stream }));
        }
        let set = WorkerSet {
            conns,
            op_gate: Mutex::new(()),
            shipped_relations: Mutex::new(HashMap::new()),
            shipped_state: Mutex::new(HashSet::new()),
            next_id: AtomicU64::new(1),
        };
        set.ping()?;
        Ok(Arc::new(set))
    }

    fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn conn(&self, i: usize) -> std::sync::MutexGuard<'_, WorkerConn> {
        self.conns[i].lock().expect("worker conn lock")
    }

    /// Pipelined send-to-all / expect-OK-from-all (ping, shutdown, ships).
    fn broadcast(&self, make_frame: impl Fn(u64) -> Frame) -> Result<(), RemoteError> {
        let _gate = self.op_gate.lock().expect("op gate");
        let id = self.fresh_id();
        for i in 0..self.conns.len() {
            self.conn(i).send(&make_frame(id))?;
        }
        for i in 0..self.conns.len() {
            expect_ok(&self.conn(i).recv(id)?)?;
        }
        Ok(())
    }

    /// Ping every worker (pipelined), verifying liveness and protocol.
    pub fn ping(&self) -> Result<(), RemoteError> {
        self.broadcast(|id| Frame::new(KIND_PING, id, Vec::new()))
    }

    /// Ask every worker process to exit. The set is unusable afterwards.
    pub fn shutdown(&self) -> Result<(), RemoteError> {
        self.broadcast(|id| Frame::new(KIND_SHUTDOWN, id, Vec::new()))
    }
}

fn connect_with_backoff<A: ToSocketAddrs>(addr: &A) -> Result<TcpStream, RemoteError> {
    let mut delay = Duration::from_millis(CONNECT_BACKOFF_START_MS);
    let mut last = None;
    for attempt in 0..CONNECT_ATTEMPTS {
        if attempt > 0 {
            std::thread::sleep(delay);
            delay *= 2;
        }
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
    }
    Err(RemoteError::Transport(format!(
        "connect: {} (after {CONNECT_ATTEMPTS} attempts)",
        last.expect("at least one attempt")
    )))
}

impl RemoteTransport for WorkerSet {
    fn workers(&self) -> usize {
        self.conns.len()
    }

    fn ensure_relation(
        &self,
        relation: &Arc<Relation>,
    ) -> Result<Vec<(usize, usize)>, RemoteError> {
        let epoch = (relation.ident(), relation.version());
        if let Some(ranges) = self
            .shipped_relations
            .lock()
            .expect("shipped relations lock")
            .get(&epoch)
        {
            return Ok(ranges.clone());
        }
        let ranges = Parallelism::shard_ranges(relation.len(), self.conns.len().max(1));
        {
            let _gate = self.op_gate.lock().expect("op gate");
            let id = self.fresh_id();
            for (i, &(start, len)) in ranges.iter().enumerate() {
                let body = ship::encode_partition(relation, start, len);
                self.conn(i)
                    .send(&Frame::new(KIND_LOAD_PARTITION, id, body))?;
            }
            for i in 0..self.conns.len() {
                expect_ok(&self.conn(i).recv(id)?)?;
            }
        }
        self.shipped_relations
            .lock()
            .expect("shipped relations lock")
            .insert(epoch, ranges.clone());
        Ok(ranges)
    }

    fn ensure_state(
        &self,
        domain: u8,
        key: u64,
        encode: &dyn Fn() -> Vec<u8>,
    ) -> Result<(), RemoteError> {
        if self
            .shipped_state
            .lock()
            .expect("shipped state lock")
            .contains(&(domain, key))
        {
            return Ok(());
        }
        let mut body = vec![domain];
        body.extend_from_slice(&key.to_be_bytes());
        body.extend_from_slice(&encode());
        self.broadcast(|id| Frame::new(KIND_LOAD_STATE, id, body.clone()))?;
        self.shipped_state
            .lock()
            .expect("shipped state lock")
            .insert((domain, key));
        Ok(())
    }

    fn scatter(
        &self,
        op: u8,
        requests: Vec<Option<Vec<u8>>>,
    ) -> Result<Vec<Option<Vec<u8>>>, RemoteError> {
        let mut replies: Vec<Option<Vec<u8>>> = vec![None; requests.len()];
        self.scatter_streamed(op, requests, &mut |worker, bytes, _outstanding| {
            replies[worker] = Some(bytes);
            Ok(())
        })?;
        Ok(replies)
    }

    fn scatter_streamed(
        &self,
        op: u8,
        requests: Vec<Option<Vec<u8>>>,
        complete: &mut dyn FnMut(usize, Vec<u8>, usize) -> Result<(), RemoteError>,
    ) -> Result<(), RemoteError> {
        let _gate = self.op_gate.lock().expect("op gate");
        if requests.len() != self.conns.len() {
            return Err(RemoteError::Protocol(format!(
                "scatter carries {} requests for {} workers",
                requests.len(),
                self.conns.len()
            )));
        }
        let id = self.fresh_id();
        // Write every un-pruned request before reading any reply: one
        // scatter, one round trip.
        let live: Vec<usize> = requests
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_some().then_some(i))
            .collect();
        for &i in &live {
            let payload = requests[i].as_ref().expect("live request");
            let mut body = Vec::with_capacity(1 + payload.len());
            body.push(op);
            body.extend_from_slice(payload);
            self.conn(i).send(&Frame::new(KIND_SCATTER, id, body))?;
        }
        // One reader thread per live worker feeds the completion channel;
        // the merge below runs on this thread the moment a reply lands,
        // while later replies are still in flight. `arrived` is bumped by
        // the reader *before* the channel send, so the outstanding count a
        // completion reports never overstates the overlap.
        let total = live.len();
        let arrived = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<Frame, RemoteError>)>();
        std::thread::scope(|scope| {
            for &i in &live {
                let tx = tx.clone();
                let arrived = &arrived;
                scope.spawn(move || {
                    let result = self.conn(i).recv(id);
                    arrived.fetch_add(1, Ordering::SeqCst);
                    let _ = tx.send((i, result));
                });
            }
            drop(tx);
            // Drain the channel fully even after an error so every reader
            // thread's reply is consumed and the streams stay framed.
            let mut first_err: Option<RemoteError> = None;
            for (worker, result) in rx {
                if first_err.is_some() {
                    continue;
                }
                let step = result.and_then(|frame| match frame.kind {
                    KIND_RESULT | KIND_GRAM_PARTIAL | KIND_ESTEP_PARTIAL => {
                        let outstanding = total - arrived.load(Ordering::SeqCst).min(total);
                        complete(worker, frame.body, outstanding)
                    }
                    KIND_ERROR => {
                        let (kind, msg) = decode_error_body(&frame.body);
                        Err(RemoteError::Worker(format!("{kind}: {msg}")))
                    }
                    k => Err(RemoteError::Protocol(format!(
                        "expected scatter result, got kind {k:#04x}"
                    ))),
                });
                if let Err(e) = step {
                    first_err = Some(e);
                }
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        })
    }
}
