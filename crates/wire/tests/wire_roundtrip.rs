//! Wire-layer round trips and hostile-bytes safety.
//!
//! The frame layer's own unit tests cover header-level hostility; this
//! suite drives the *payload* codecs the worker protocol carries —
//! shipped partitions, view plans, encoded factors, aggregate partials —
//! plus a live worker fed hostile frames over a real socket. The
//! invariant everywhere: malformed input is a typed error, never a panic
//! and never a giant allocation.

use reptile_relational::{ship, Exec, Predicate, Relation, Schema, Value, View};
use reptile_wire::frame::{
    read_frame, write_frame, Frame, KIND_LOAD_PARTITION, KIND_LOAD_STATE, KIND_OK, KIND_PING,
    KIND_RESULT, KIND_SCATTER,
};
use reptile_wire::WorkerState;
use std::sync::Arc;

fn sample_relation() -> Arc<Relation> {
    let schema = Arc::new(
        Schema::builder()
            .hierarchy("geo", ["region", "site"])
            .measure("kwh")
            .build()
            .unwrap(),
    );
    let mut b = Relation::builder(schema);
    for (region, site, kwh) in [
        ("north", "n1", 4.5),
        ("north", "n2", 5.25),
        ("south", "s1", -1.0),
        ("south", "s2", 2.0),
        ("south", "s3", 0.125),
    ] {
        b = b
            .row([Value::str(region), Value::str(site), Value::float(kwh)])
            .unwrap();
    }
    Arc::new(b.build())
}

#[test]
fn partition_payload_round_trips_bit_exactly() {
    let rel = sample_relation();
    let bytes = ship::encode_partition(&rel, 1, 3);
    let part = ship::decode_partition(&bytes).expect("decode partition");
    assert_eq!(part.row_offset, 1);
    assert_eq!(part.relation.len(), 3);
    assert_eq!(part.relation.ident(), rel.ident());
    assert_eq!(part.relation.version(), rel.version());
    // Shared-dictionary contract: the partition carries the FULL
    // dictionaries in code order, so a code means the same value on the
    // worker as on the coordinator — even for values absent from this
    // partition's rows.
    let schema = rel.schema();
    for attr in [schema.attr("region").unwrap(), schema.attr("site").unwrap()] {
        let full = rel.code_column(attr);
        let shipped = part.relation.code_column(attr);
        assert_eq!(shipped.dict(), full.dict());
        assert_eq!(shipped.codes(), &full.codes()[1..4]);
    }
    for local in 0..3 {
        assert_eq!(part.relation.row(local), rel.row(1 + local));
    }
}

#[test]
fn partition_payload_rejects_hostile_bytes_without_panicking() {
    let rel = sample_relation();
    let bytes = ship::encode_partition(&rel, 0, rel.len());
    // Truncation at every prefix length must be a typed error, not a panic.
    for cut in 0..bytes.len() {
        assert!(
            ship::decode_partition(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes decoded"
        );
    }
    // Bit flips in the leading counts either decode (harmlessly different
    // metadata) or fail typed; they must never panic or over-allocate.
    for i in 0..bytes.len().min(64) {
        let mut evil = bytes.clone();
        evil[i] ^= 0xff;
        let _ = ship::decode_partition(&evil);
    }
    assert!(ship::decode_partition(b"not a partition").is_err());
}

#[test]
fn view_plan_and_partial_round_trip() {
    let rel = sample_relation();
    let schema = rel.schema();
    let region = schema.attr("region").unwrap();
    let kwh = schema.attr("kwh").unwrap();
    let plan_bytes = ship::encode_view_plan(
        rel.ident(),
        rel.version(),
        &Predicate::all(),
        &[region],
        kwh,
    );
    let plan = ship::decode_view_plan(&plan_bytes).expect("decode plan");
    assert_eq!(plan.ident, rel.ident());
    assert_eq!(plan.version, rel.version());
    for cut in 0..plan_bytes.len() {
        assert!(ship::decode_view_plan(&plan_bytes[..cut]).is_err());
    }

    // A partial computed from a shipped partition merges back losslessly:
    // this is the exact path the worker drives, minus the socket.
    let part_bytes = ship::encode_partition(&rel, 0, rel.len());
    let part = ship::decode_partition(&part_bytes).unwrap();
    let partial_bytes = ship::answer_view_scan(&part, &plan_bytes).expect("scan");
    let groups = ship::decode_view_partial(&partial_bytes, 1).expect("decode partial");
    let serial = View::compute(
        rel.clone(),
        Predicate::all(),
        vec![region],
        kwh,
        &Exec::Serial,
    )
    .unwrap();
    assert_eq!(groups.len(), serial.len());
    for cut in 0..partial_bytes.len() {
        assert!(ship::decode_view_partial(&partial_bytes[..cut], 1).is_err());
    }
    // Wrong expected key width is a typed shape error.
    assert!(ship::decode_view_partial(&partial_bytes, 2).is_err());
}

#[test]
fn worker_rejects_hostile_em_frames_over_a_live_socket() {
    use reptile_relational::exec::{DOMAIN_EM, OP_CLUSTER_ZTZ, OP_E_STEP, OP_GRAM_CELLS};
    use std::net::{TcpListener, TcpStream};
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let mut state = WorkerState::new();
        for stream in listener.incoming().take(1) {
            let _ = reptile_wire::worker::serve_connection(&mut state, stream.unwrap());
        }
        state
    });

    let mut s = TcpStream::connect(addr).unwrap();
    // An EM state blob that is pure garbage, then EM scatters against a
    // key that was never loaded, then EM scatters with hostile payloads:
    // every one must come back as a typed error frame on a live
    // connection — never a panic, never a wedged worker.
    let mut evil_state = vec![DOMAIN_EM];
    evil_state.extend_from_slice(&0x1234u64.to_be_bytes());
    evil_state.extend_from_slice(b"definitely not an EM state blob");
    let mut missing_key_req = 0x9999u64.to_be_bytes().to_vec();
    missing_key_req.extend_from_slice(&[0u8; 16]);
    let mut hostile: Vec<Frame> = vec![
        Frame::new(KIND_LOAD_STATE, 1, evil_state),
        Frame::new(KIND_SCATTER, 2, {
            let mut b = vec![OP_GRAM_CELLS];
            b.extend_from_slice(&missing_key_req);
            b
        }),
        Frame::new(KIND_SCATTER, 3, vec![OP_CLUSTER_ZTZ, 1, 2, 3]),
        Frame::new(KIND_SCATTER, 4, vec![OP_E_STEP]),
    ];
    // Truncation sweep over an E-step request body: every prefix is a
    // typed error too.
    for (n, cut) in [0usize, 5, 9, 17, 24].iter().enumerate() {
        let mut b = vec![OP_E_STEP];
        b.extend_from_slice(&missing_key_req[..(*cut).min(missing_key_req.len())]);
        hostile.push(Frame::new(KIND_SCATTER, 5 + n as u64, b));
    }
    for frame in &hostile {
        write_frame(&mut s, frame).unwrap();
        let reply = read_frame(&mut s).unwrap().expect("reply");
        assert_eq!(reply.id, frame.id);
        assert_eq!(
            reply.kind,
            reptile_wire::frame::KIND_ERROR,
            "hostile EM frame id {} got kind {:#04x}",
            frame.id,
            reply.kind
        );
        let (_kind, msg) = reptile_wire::worker::decode_error_body(&reply.body);
        assert!(!msg.is_empty());
    }
    // The connection survived all of it.
    write_frame(&mut s, &Frame::new(KIND_PING, 99, Vec::new())).unwrap();
    assert_eq!(read_frame(&mut s).unwrap().unwrap().kind, KIND_OK);
    drop(s);

    let state = server.join().unwrap();
    assert_eq!(state.em_state_count(), 0, "no hostile blob may be retained");
}

#[test]
fn worker_rejects_hostile_frames_over_a_live_socket() {
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let mut state = WorkerState::new();
        // Serve exactly three connections, then stop.
        for stream in listener.incoming().take(3) {
            let _ = reptile_wire::worker::serve_connection(&mut state, stream.unwrap());
        }
        state
    });

    // Connection 1: raw garbage after a valid length prefix — the worker
    // must drop the connection without dying.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&9u32.to_be_bytes()).unwrap();
    s.write_all(b"XXgarbage").unwrap();
    drop(s);

    // Connection 2: well-framed frames with hostile bodies — each must be
    // answered with a typed error frame, and the connection must survive
    // all of them.
    let mut s = TcpStream::connect(addr).unwrap();
    let hostile = [
        Frame::new(KIND_LOAD_PARTITION, 1, b"not a partition".to_vec()),
        Frame::new(KIND_LOAD_STATE, 2, vec![7u8; 3]),
        Frame::new(KIND_SCATTER, 3, Vec::new()),
        Frame::new(KIND_SCATTER, 4, vec![0x77, 1, 2, 3]),
    ];
    for frame in &hostile {
        write_frame(&mut s, frame).unwrap();
        let reply = read_frame(&mut s).unwrap().expect("reply");
        assert_eq!(reply.id, frame.id);
        assert_eq!(
            reply.kind,
            reptile_wire::frame::KIND_ERROR,
            "hostile frame id {} got kind {:#04x}",
            frame.id,
            reply.kind
        );
        let (_kind, msg) = reptile_wire::worker::decode_error_body(&reply.body);
        assert!(!msg.is_empty());
    }
    // Still alive: a ping on the same connection answers OK.
    write_frame(&mut s, &Frame::new(KIND_PING, 5, Vec::new())).unwrap();
    assert_eq!(read_frame(&mut s).unwrap().unwrap().kind, KIND_OK);
    drop(s);

    // Connection 3: a legitimate load + scatter works after all the abuse,
    // and state survived across connections.
    let rel = sample_relation();
    let schema = rel.schema();
    let region = schema.attr("region").unwrap();
    let kwh = schema.attr("kwh").unwrap();
    let mut s = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut s,
        &Frame::new(
            KIND_LOAD_PARTITION,
            6,
            ship::encode_partition(&rel, 0, rel.len()),
        ),
    )
    .unwrap();
    assert_eq!(read_frame(&mut s).unwrap().unwrap().kind, KIND_OK);
    let plan = ship::encode_view_plan(
        rel.ident(),
        rel.version(),
        &Predicate::all(),
        &[region],
        kwh,
    );
    let mut body = vec![reptile_relational::exec::OP_VIEW_SCAN];
    body.extend_from_slice(&plan);
    write_frame(&mut s, &Frame::new(KIND_SCATTER, 7, body)).unwrap();
    let reply = read_frame(&mut s).unwrap().unwrap();
    assert_eq!(reply.kind, KIND_RESULT);
    assert_eq!(ship::decode_view_partial(&reply.body, 1).unwrap().len(), 2);
    drop(s);

    let state = server.join().unwrap();
    assert_eq!(state.partition_count(), 1);
}
