//! Cross-process exactness: the standing `==` property, now across real
//! worker processes.
//!
//! Two `reptile-worker` binaries are spawned; the coordinator ships
//! partitions and factor state, scatters plans, and merges partials. The
//! bar is the workspace's bit-exactness contract: `Exec::Remote` equals
//! `Exec::Shards` equals `Exec::Serial` under `==` — never tolerance — for
//! view scans, hierarchy aggregates, and the full end-to-end
//! recommendation, re-verified after an ingest epoch. Zero remote
//! fallbacks are tolerated: a fallback would mask a broken wire path with
//! a locally-computed (still correct) answer.

use reptile_relational::{
    AggregateKind, Exec, GroupKey, IngestBatch, Predicate, Relation, Remote, Schema, Value, View,
};
use reptile_wire::WorkerSet;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

/// A running worker process; killed on drop so a failing test never leaks
/// a listener.
struct Worker {
    child: Child,
    addr: String,
}

impl Worker {
    fn spawn() -> Worker {
        let mut child = Command::new(env!("CARGO_BIN_EXE_reptile-worker"))
            .args(["--port", "0"])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn reptile-worker");
        let stdout = child.stdout.take().expect("worker stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("worker banner");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected worker banner {line:?}"))
            .to_string();
        Worker { child, addr }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_worker_set(n: usize) -> (Vec<Worker>, Exec) {
    let workers: Vec<Worker> = (0..n).map(|_| Worker::spawn()).collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    let set = WorkerSet::connect(&addrs).expect("connect worker set");
    (workers, Exec::Remote(Remote::new(set)))
}

fn sample_relation() -> Arc<Relation> {
    let schema = Arc::new(
        Schema::builder()
            .hierarchy("geo", ["district", "village"])
            .hierarchy("time", ["year"])
            .measure("m")
            .build()
            .unwrap(),
    );
    let mut b = Relation::builder(schema);
    // Deterministic skew: one faulty village in 2002.
    let mut noise = 17u64;
    for year in [2001i64, 2002, 2003] {
        for d in 0..3 {
            for v in 0..4 {
                noise = noise.wrapping_mul(6364136223846793005).wrapping_add(1);
                let jitter = ((noise >> 33) % 1000) as f64 / 1000.0 - 0.5;
                let value = 10.0 + d as f64 + 0.3 * v as f64 + jitter
                    - if d == 1 && v == 2 && year == 2002 {
                        6.0
                    } else {
                        0.0
                    };
                b = b
                    .row([
                        Value::str(format!("D{d}")),
                        Value::str(format!("D{d}-V{v}")),
                        Value::int(year),
                        Value::float(value),
                    ])
                    .unwrap();
            }
        }
    }
    Arc::new(b.build())
}

fn ingest_epoch(rel: &Arc<Relation>) -> Arc<Relation> {
    // A new district (appended dictionary codes) plus a deletion: the
    // hardest shape for stale-state bugs.
    let batch = IngestBatch::new()
        .insert([
            Value::str("Azz-new"),
            Value::str("Azz-new-V0"),
            Value::int(2002),
            Value::float(3.25),
        ])
        .delete(rel.row(1).to_vec());
    Arc::new(rel.apply(&batch).unwrap())
}

#[test]
fn remote_views_equal_sharded_equal_serial_across_epochs() {
    let fallbacks_before = reptile_obs::counter_value(reptile_obs::Counter::RemoteFallbacks);
    let rpcs_before = reptile_obs::counter_value(reptile_obs::Counter::RemoteRpcs);
    let (_workers, remote) = spawn_worker_set(2);
    let mut rel = sample_relation();
    let schema = rel.schema().clone();
    let district = schema.attr("district").unwrap();
    let village = schema.attr("village").unwrap();
    let year = schema.attr("year").unwrap();
    let m = schema.attr("m").unwrap();
    for epoch in 0..2 {
        let group_bys = [vec![district, year], vec![village], vec![]];
        let predicates = [
            Predicate::all(),
            Predicate::eq(district, Value::str("D1")),
            Predicate::eq(village, Value::str("nowhere")),
        ];
        for group_by in &group_bys {
            for predicate in &predicates {
                let serial = View::compute(
                    rel.clone(),
                    predicate.clone(),
                    group_by.clone(),
                    m,
                    &Exec::Serial,
                )
                .unwrap();
                let sharded = View::compute(
                    rel.clone(),
                    predicate.clone(),
                    group_by.clone(),
                    m,
                    &Exec::Shards(2),
                )
                .unwrap();
                let distributed =
                    View::compute(rel.clone(), predicate.clone(), group_by.clone(), m, &remote)
                        .unwrap();
                assert_eq!(serial, sharded, "epoch {epoch}");
                assert_eq!(serial, distributed, "epoch {epoch}");
                // Provenance row order is part of the contract too.
                for key in serial.keys() {
                    assert_eq!(
                        serial.provenance(&key).unwrap(),
                        distributed.provenance(&key).unwrap(),
                        "epoch {epoch}: provenance for {key}"
                    );
                }
            }
        }
        rel = ingest_epoch(&rel);
    }
    assert_eq!(
        reptile_obs::counter_value(reptile_obs::Counter::RemoteFallbacks),
        fallbacks_before,
        "a remote fallback means the wire path broke and was silently papered over"
    );
    assert!(reptile_obs::counter_value(reptile_obs::Counter::RemoteRpcs) > rpcs_before);
}

#[test]
fn remote_aggregates_equal_serial_across_epochs() {
    use reptile_factor::encoded::EncodedHierarchyAggregates;
    use reptile_factor::{EncodedFactor, HierarchyFactor};
    let fallbacks_before = reptile_obs::counter_value(reptile_obs::Counter::RemoteFallbacks);
    let (_workers, remote) = spawn_worker_set(2);
    let Exec::Remote(ref r) = remote else {
        unreachable!()
    };
    let rel = sample_relation();
    let schema = rel.schema().clone();
    for epoch in 0..2 {
        let rel_now = if epoch == 0 {
            rel.clone()
        } else {
            ingest_epoch(&rel)
        };
        for hierarchy in schema.hierarchies() {
            for depth in 1..=hierarchy.levels.len() {
                let factor = HierarchyFactor::from_relation(&rel_now, hierarchy, depth);
                let enc = EncodedFactor::encode(&factor, &Exec::Serial);
                let serial = EncodedHierarchyAggregates::compute(&enc, &Exec::Serial);
                let distributed =
                    EncodedHierarchyAggregates::compute_remote(&enc, r).expect("remote aggregates");
                assert_eq!(
                    serial, distributed,
                    "epoch {epoch}: {}@{depth}",
                    hierarchy.name
                );
                // The infallible surface agrees too (and must not have
                // fallen back locally).
                assert_eq!(serial, EncodedHierarchyAggregates::compute(&enc, &remote));
            }
        }
    }
    assert_eq!(
        reptile_obs::counter_value(reptile_obs::Counter::RemoteFallbacks),
        fallbacks_before
    );
}

#[test]
fn remote_recommendation_equals_serial_across_epochs() {
    use reptile::{Complaint, Direction, Reptile, ReptileConfig};
    let fallbacks_before = reptile_obs::counter_value(reptile_obs::Counter::RemoteFallbacks);
    let (_workers, remote) = spawn_worker_set(2);
    let rel = sample_relation();
    let schema = rel.schema().clone();
    let view_of = |rel: &Arc<Relation>, exec: &Exec| {
        View::compute(
            rel.clone(),
            Predicate::all(),
            vec![
                schema.attr("district").unwrap(),
                schema.attr("year").unwrap(),
            ],
            schema.attr("m").unwrap(),
            exec,
        )
        .unwrap()
    };
    let complaint = Complaint::new(
        GroupKey(vec![Value::str("D1"), Value::int(2002)]),
        AggregateKind::Mean,
        Direction::TooLow,
    );

    let serial_engine = Reptile::new(rel.clone(), schema.clone());
    let remote_engine = Reptile::new(rel.clone(), schema.clone()).with_config(ReptileConfig {
        exec: remote.clone(),
        ..Default::default()
    });

    for epoch in 0..2 {
        let serial = serial_engine
            .recommend(
                &view_of(&serial_engine.relation(), &Exec::Serial),
                &complaint,
            )
            .unwrap();
        let distributed = remote_engine
            .recommend(&view_of(&remote_engine.relation(), &remote), &complaint)
            .unwrap();
        assert_eq!(serial.original_value, distributed.original_value);
        assert_eq!(serial.ranked.len(), distributed.ranked.len());
        for (a, b) in serial.ranked.iter().zip(&distributed.ranked) {
            assert_eq!(a.hierarchy, b.hierarchy, "epoch {epoch}");
            assert_eq!(a.key, b.key, "epoch {epoch}");
            assert_eq!(a.observed, b.observed, "epoch {epoch} / {}", a.key);
            assert_eq!(a.expected, b.expected, "epoch {epoch} / {}", a.key);
            assert_eq!(
                a.repaired_complaint_value, b.repaired_complaint_value,
                "epoch {epoch} / {}",
                a.key
            );
            assert_eq!(a.penalty, b.penalty, "epoch {epoch} / {}", a.key);
            assert_eq!(a.improvement, b.improvement, "epoch {epoch} / {}", a.key);
        }
        assert!(serial
            .best_group()
            .is_some_and(|g| g.key.to_string().contains("D1-V2")));
        if epoch == 0 {
            // Same ingest on both engines: both advance one epoch.
            let batch = IngestBatch::new()
                .insert([
                    Value::str("Azz-new"),
                    Value::str("Azz-new-V0"),
                    Value::int(2002),
                    Value::float(3.25),
                ])
                .delete(rel.row(1).to_vec());
            serial_engine.ingest(&batch).unwrap();
            remote_engine.ingest(&batch).unwrap();
        }
    }
    assert_eq!(
        reptile_obs::counter_value(reptile_obs::Counter::RemoteFallbacks),
        fallbacks_before,
        "the distributed recommendation silently fell back to local compute"
    );
}

#[test]
fn overlapped_scatter_merges_before_last_worker_reply() {
    use reptile_factor::encoded::EncodedHierarchyAggregates;
    use reptile_factor::{EncodedFactor, HierarchyFactor};
    use reptile_wire::testing::LoopbackWorkers;
    use std::time::Duration;

    let rel = sample_relation();
    let schema = rel.schema().clone();
    let geo = schema
        .hierarchies()
        .iter()
        .find(|h| h.name == "geo")
        .unwrap();
    let factor = HierarchyFactor::from_relation(&rel, geo, 2);
    let enc = EncodedFactor::encode(&factor, &Exec::Serial);
    let serial = EncodedHierarchyAggregates::compute(&enc, &Exec::Serial);

    // Deterministic overlap: worker 0 (first in fold order) answers
    // immediately, workers 1 and 2 lag far apart. Worker 0's partial MUST
    // fold while two replies are outstanding and worker 1's while one is —
    // two overlapped merges per scatter, by construction.
    let overlaps_before = reptile_obs::counter_value(reptile_obs::Counter::RemoteOverlappedMerges);
    let fallbacks_before = reptile_obs::counter_value(reptile_obs::Counter::RemoteFallbacks);
    let transport = Arc::new(LoopbackWorkers::new(vec![
        Duration::ZERO,
        Duration::from_millis(80),
        Duration::from_millis(160),
    ]));
    let remote = Remote::new(transport);
    let merged = EncodedHierarchyAggregates::compute_remote(&enc, &remote).unwrap();
    assert_eq!(serial, merged);
    assert!(
        reptile_obs::counter_value(reptile_obs::Counter::RemoteOverlappedMerges)
            >= overlaps_before + 2,
        "ascending reply delays must produce overlapped merges"
    );

    // Property sweep: random per-worker delay assignments (seeded LCG) must
    // never change the merged bits — buffered out-of-order arrivals replay
    // in worker order whatever the network timing.
    let mut seed = 0xC0FFEE_u64;
    for round in 0..5 {
        let mut delays = Vec::with_capacity(3);
        for _ in 0..3 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            delays.push(Duration::from_millis((seed >> 33) % 50));
        }
        let remote = Remote::new(Arc::new(LoopbackWorkers::new(delays.clone())));
        let merged = EncodedHierarchyAggregates::compute_remote(&enc, &remote).unwrap();
        assert_eq!(serial, merged, "round {round} delays {delays:?}");
    }
    assert_eq!(
        reptile_obs::counter_value(reptile_obs::Counter::RemoteFallbacks),
        fallbacks_before
    );
}

#[test]
fn remote_fit_is_bit_identical_to_serial_across_epochs() {
    use reptile_model::multilevel::{MultilevelConfig, MultilevelModel, TrainingBackend};
    use reptile_model::DesignBuilder;

    let fallbacks_before = reptile_obs::counter_value(reptile_obs::Counter::RemoteFallbacks);
    let gram_before = reptile_obs::counter_value(reptile_obs::Counter::RemoteGramPartials);
    let e_step_before = reptile_obs::counter_value(reptile_obs::Counter::RemoteEStepPartials);
    let (_workers, remote) = spawn_worker_set(2);
    let schema_of = |rel: &Arc<Relation>| rel.schema().clone();
    let view_of = |rel: &Arc<Relation>, exec: &Exec| {
        let schema = schema_of(rel);
        View::compute(
            rel.clone(),
            Predicate::all(),
            vec![
                schema.attr("year").unwrap(),
                schema.attr("district").unwrap(),
                schema.attr("village").unwrap(),
            ],
            schema.attr("m").unwrap(),
            exec,
        )
        .unwrap()
    };
    let config = MultilevelConfig {
        iterations: 8,
        ..Default::default()
    };

    let mut rel = sample_relation();
    for epoch in 0..2 {
        let schema = schema_of(&rel);
        let serial_design =
            DesignBuilder::new(&view_of(&rel, &Exec::Serial), &schema, AggregateKind::Mean)
                .build()
                .unwrap();
        let serial =
            MultilevelModel::fit_with_backend(&serial_design, config, TrainingBackend::Factorized)
                .unwrap();
        let remote_design =
            DesignBuilder::new(&view_of(&rel, &remote), &schema, AggregateKind::Mean)
                .with_exec(remote.clone())
                .build()
                .unwrap();
        let distributed =
            MultilevelModel::fit_exec(&remote_design, config, TrainingBackend::Factorized, &remote)
                .unwrap();
        // The standing bar: ==, never tolerance.
        assert_eq!(serial.beta, distributed.beta, "epoch {epoch}");
        assert_eq!(serial.sigma2, distributed.sigma2, "epoch {epoch}");
        assert_eq!(serial.sigma_b, distributed.sigma_b, "epoch {epoch}");
        assert_eq!(serial.b, distributed.b, "epoch {epoch}");
        assert_eq!(serial.rss, distributed.rss, "epoch {epoch}");
        assert_eq!(
            serial.iterations_run, distributed.iterations_run,
            "epoch {epoch}"
        );
        assert_eq!(
            serial.predict_all(&serial_design),
            distributed.predict_all(&remote_design),
            "epoch {epoch}"
        );
        rel = ingest_epoch(&rel);
    }
    assert_eq!(
        reptile_obs::counter_value(reptile_obs::Counter::RemoteFallbacks),
        fallbacks_before,
        "the remote fit silently fell back to local compute"
    );
    assert!(
        reptile_obs::counter_value(reptile_obs::Counter::RemoteGramPartials) > gram_before,
        "gram/ZᵀZ partials must have been computed worker-side"
    );
    assert!(
        reptile_obs::counter_value(reptile_obs::Counter::RemoteEStepPartials) > e_step_before,
        "E-step partials must have been computed worker-side"
    );
}

#[test]
fn worker_set_shutdown_terminates_workers() {
    let workers: Vec<Worker> = (0..2).map(|_| Worker::spawn()).collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    let set = WorkerSet::connect(&addrs).expect("connect");
    set.shutdown().expect("shutdown");
    for mut w in workers {
        let status = w.child.wait().expect("worker exit");
        assert!(status.success(), "worker exited {status:?}");
    }
}
