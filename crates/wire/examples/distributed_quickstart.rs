//! Distributed Reptile quickstart: a coordinator recommendation computed
//! over worker processes, checked bit-for-bit against serial.
//!
//! By default the example starts two in-process workers on ephemeral TCP
//! ports (the full wire path — framing, shipping, scatter — just without
//! separate processes). To run against real worker processes instead:
//!
//! ```text
//! cargo run -p reptile-wire --bin reptile-worker -- --port 7101 &
//! cargo run -p reptile-wire --bin reptile-worker -- --port 7102 &
//! cargo run -p reptile-wire --example distributed_quickstart -- \
//!     127.0.0.1:7101 127.0.0.1:7102
//! ```

use reptile::{Complaint, Direction, Reptile, ReptileConfig};
use reptile_relational::{
    AggregateKind, Exec, GroupKey, Predicate, Relation, Remote, Schema, Value, View,
};
use reptile_wire::WorkerSet;
use std::net::TcpListener;
use std::sync::Arc;

fn main() {
    // 1. Workers: either the addresses given on the command line, or two
    //    local listeners served from background threads.
    let mut addrs: Vec<String> = std::env::args().skip(1).collect();
    if addrs.is_empty() {
        for _ in 0..2 {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind worker");
            addrs.push(listener.local_addr().expect("worker addr").to_string());
            std::thread::spawn(move || {
                let _ = reptile_wire::worker::serve(listener);
            });
        }
        println!("started 2 in-process workers: {}", addrs.join(", "));
    }
    let set = WorkerSet::connect(&addrs).expect("connect workers");
    let remote = Exec::Remote(Remote::new(set.clone()));

    // 2. Data: districts × villages × years with one faulty village.
    let schema = Arc::new(
        Schema::builder()
            .hierarchy("geo", ["district", "village"])
            .hierarchy("time", ["year"])
            .measure("turnout")
            .build()
            .expect("schema"),
    );
    let mut b = Relation::builder(schema.clone());
    for year in [2019i64, 2020] {
        for d in 0..4 {
            for v in 0..5 {
                let faulty = d == 2 && v == 3 && year == 2020;
                let turnout = 60.0 + d as f64 + 0.5 * v as f64 - if faulty { 25.0 } else { 0.0 };
                b = b
                    .row([
                        Value::str(format!("D{d}")),
                        Value::str(format!("D{d}-V{v}")),
                        Value::int(year),
                        Value::float(turnout),
                    ])
                    .expect("row");
            }
        }
    }
    let relation = Arc::new(b.build());

    // 3. The complaint view, computed on the workers.
    let district = schema.attr("district").expect("district");
    let year = schema.attr("year").expect("year");
    let turnout = schema.attr("turnout").expect("turnout");
    let view = View::compute(
        relation.clone(),
        Predicate::all(),
        vec![district, year],
        turnout,
        &remote,
    )
    .expect("distributed view");
    let serial_view = View::compute(
        relation.clone(),
        Predicate::all(),
        vec![district, year],
        turnout,
        &Exec::Serial,
    )
    .expect("serial view");
    assert_eq!(view, serial_view, "distributed view must equal serial");

    // 4. A distributed recommendation vs the serial one.
    let complaint = Complaint::new(
        GroupKey(vec![Value::str("D2"), Value::int(2020)]),
        AggregateKind::Mean,
        Direction::TooLow,
    );
    let engine = Reptile::new(relation.clone(), schema.clone()).with_config(ReptileConfig {
        exec: remote.clone(),
        ..Default::default()
    });
    let recommendation = engine.recommend(&view, &complaint).expect("recommend");
    let serial_engine = Reptile::new(relation, schema);
    let serial = serial_engine
        .recommend(&serial_view, &complaint)
        .expect("serial recommend");

    println!(
        "complaint: mean turnout of {} looks too low ({:.3})",
        complaint.key, recommendation.original_value
    );
    for (rank, group) in recommendation.ranked.iter().take(3).enumerate() {
        println!(
            "  #{rank}: {} / {}  (observed {:.3}, expected {:.3}, repaired mean {:.3})",
            group.hierarchy,
            group.key,
            group.observed,
            group.expected,
            group.repaired_complaint_value
        );
    }
    let exact = recommendation
        .ranked
        .iter()
        .zip(&serial.ranked)
        .all(|(a, b)| a.key == b.key && a.improvement == b.improvement);
    println!(
        "bit-exact vs serial: {}",
        if exact && recommendation.ranked.len() == serial.ranked.len() {
            "yes"
        } else {
            "NO — wire bug"
        }
    );
    println!(
        "remote rpcs: {}, bytes shipped: {}",
        reptile_obs::counter_value(reptile_obs::Counter::RemoteRpcs),
        reptile_obs::counter_value(reptile_obs::Counter::RemoteBytesShipped),
    );
    set.shutdown().expect("shutdown workers");
}
